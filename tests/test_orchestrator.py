"""Tests of the sweep orchestrator: grid expansion (dedup, empty-grid errors, config
round-trips), serial vs pooled determinism, worker-crash requeue, kill + resume
bit-identity, and the ``python -m repro sweep`` CLI wiring."""

from __future__ import annotations

import pytest

from repro.runtime import (
    ShardSpec,
    SweepConfig,
    SweepError,
    SweepOrchestrator,
    strip_timing,
)
from repro.runtime.orchestrator import (
    KILL_ENV_VAR,
    sweep_config_from_jsonable,
    sweep_config_to_jsonable,
)
from repro.search.base import SearchBudget
from repro.utils.serialization import load_json


def _sweep_config(**overrides) -> SweepConfig:
    """A grid small enough to sweep inside a unit test (search-only shards)."""
    defaults = dict(
        searchers=("eras", "random"),
        seeds=(0, 1),
        datasets=("wn18rr_like",),
        budgets=(SearchBudget(max_steps=1),),
        scale=0.4,
        num_groups=2,
        search_epochs=1,
        num_candidates=3,
        derive_samples=4,
        dim=16,
        proxy_epochs=2,
        train_final=False,
        max_workers=1,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


# ---------------------------------------------------------------------------- config/grid
class TestSweepConfig:
    def test_empty_grid_rejected(self):
        for axis in ("searchers", "seeds", "datasets", "budgets"):
            with pytest.raises(SweepError, match="empty sweep grid"):
                _sweep_config(**{axis: ()})

    def test_unknown_searcher_rejected_listing_available(self):
        with pytest.raises(SweepError, match="eras"):
            _sweep_config(searchers=("gradient-descent",))

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SweepError, match="wn18rr_like"):
            _sweep_config(datasets=("freebase",))

    def test_invalid_shard_knobs_rejected(self):
        with pytest.raises(ValueError):
            _sweep_config(dim=0)
        with pytest.raises(SweepError):
            _sweep_config(max_workers=-1)
        with pytest.raises(SweepError):
            _sweep_config(max_shard_retries=-1)

    def test_duplicate_shards_deduplicated(self):
        config = _sweep_config(searchers=("eras", "eras", "random"), seeds=(0, 0, 1))
        shards = config.expand_shards()
        assert len(shards) == 4  # {eras, random} x {0, 1}
        assert len({shard.shard_id for shard in shards}) == len(shards)

    def test_expansion_order_is_deterministic(self):
        first = [s.shard_id for s in _sweep_config().expand_shards()]
        second = [s.shard_id for s in _sweep_config().expand_shards()]
        assert first == second
        assert first[0] == "eras-wn18rr_like-seed0-b0"

    def test_config_json_round_trip(self):
        config = _sweep_config(budgets=(None, SearchBudget(max_evaluations=5)))
        rebuilt = sweep_config_from_jsonable(sweep_config_to_jsonable(config))
        assert rebuilt == config

    def test_shard_spec_round_trip(self):
        spec = ShardSpec(
            searcher="eras", seed=3, dataset="fb15k_like", budget_index=1,
            budget=SearchBudget(max_steps=2),
        )
        assert ShardSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_strip_timing_removes_nested_keys(self):
        payload = {
            "timing": {"wall_seconds": 1.0},
            "search": {"search_seconds": 2.0, "trace": [{"elapsed_seconds": 0.1, "note": "x"}]},
            "attempt": 2,
            "kept": 1,
        }
        assert strip_timing(payload) == {"search": {"trace": [{"note": "x"}]}, "kept": 1}


# ---------------------------------------------------------------------------- serial runs
class TestSweepRun:
    def test_serial_sweep_completes_and_aggregates(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        report = SweepOrchestrator(_sweep_config(), sweep_dir).run()
        assert report.ok
        assert (sweep_dir / "sweep.json").is_file()
        assert report.path.is_file() and report.markdown_path.is_file()
        by_name = {entry["searcher"]: entry for entry in report.payload["per_searcher"]}
        assert set(by_name) == {"eras", "random"}
        assert all(entry["shards"] == 2 for entry in by_name.values())
        assert all(entry["std_valid_mrr"] >= 0.0 for entry in by_name.values())
        for shard_id in report.payload["shards"]:
            shard_dir = sweep_dir / "shards" / shard_id
            assert (shard_dir / "result.json").is_file()
            assert (shard_dir / "checkpoint.json").is_file()
        assert "| eras |" in report.markdown_path.read_text()

    def test_started_directory_requires_resume(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        SweepOrchestrator(_sweep_config(), sweep_dir).run()
        with pytest.raises(SweepError, match="resume"):
            SweepOrchestrator(_sweep_config(), sweep_dir).run()

    def test_config_mismatch_rejected(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        SweepOrchestrator(_sweep_config(), sweep_dir).run()
        other = _sweep_config(seeds=(0, 2))
        with pytest.raises(SweepError, match="different"):
            SweepOrchestrator(other, sweep_dir).run(resume=True)

    def test_resume_skips_completed_shards(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        first = SweepOrchestrator(_sweep_config(), sweep_dir).run()
        resumed = SweepOrchestrator.from_directory(sweep_dir).run(resume=True)
        assert strip_timing(resumed.payload) == strip_timing(first.payload)
        # Resumed-from-complete keeps the original attempt counters (nothing re-ran).
        assert resumed.payload["shards"] == first.payload["shards"]

    def test_train_final_aggregates_eval_metrics(self, tmp_path):
        config = _sweep_config(
            searchers=("eras",), seeds=(0,), train_final=True, train_epochs=2, rerank=False
        )
        report = SweepOrchestrator(config, tmp_path / "sweep").run()
        entry = report.payload["per_searcher"][0]
        assert 0.0 <= entry["mean_eval_mrr"] <= 1.0
        assert entry["std_eval_mrr"] == 0.0  # single shard
        assert "mean_eval_hit1" in entry
        assert "test MRR" in report.markdown_path.read_text()

    def test_valid_eval_split_keeps_proxy_and_final_metrics_distinct(self, tmp_path):
        """eval_split='valid' must not clobber the search proxy's mean/std_valid_mrr."""
        config = _sweep_config(
            searchers=("eras",), seeds=(0,), train_final=True, train_epochs=2,
            rerank=False, eval_split="valid",
        )
        report = SweepOrchestrator(config, tmp_path / "sweep").run()
        entry = report.payload["per_searcher"][0]
        shard = next(iter(report.payload["shards"]))
        proxy_mrr = load_json(
            tmp_path / "sweep" / "shards" / shard / "result.json"
        )["search"]["best_valid_mrr"]
        assert entry["mean_valid_mrr"] == round(proxy_mrr, 6)  # still the proxy value
        assert "mean_eval_mrr" in entry  # the final model's valid-split MRR, separately


class _FlakyOnceSearcher:
    """Registry factory helper: a random searcher whose first-ever ``run_step`` raises.

    The "has it failed yet" bit lives in a marker file (path via the
    ``REPRO_TEST_FLAKY_MARKER`` env var), so the transient failure is visible across
    the orchestrator's worker processes: attempt 1 raises a Python-level exception,
    every later attempt (in any process) succeeds.
    """

    @staticmethod
    def build(options, pool):
        import dataclasses as _dc

        from repro.bench.workloads import quick_random_config
        from repro.search.random_search import RandomSearcher

        class FlakyRandom(RandomSearcher):
            def run_step(self, state):
                import os as _os

                marker = _os.environ["REPRO_TEST_FLAKY_MARKER"]
                if not _os.path.exists(marker):
                    with open(marker, "w", encoding="utf-8") as handle:
                        handle.write("failed once")
                    raise RuntimeError("transient shard failure (injected)")
                super().run_step(state)

        config = _dc.replace(
            quick_random_config(num_candidates=options.num_candidates, seed=options.seed),
            embedding_dim=options.dim,
        )
        trainer = _dc.replace(config.trainer, epochs=options.proxy_epochs or 2)
        return FlakyRandom(_dc.replace(config, trainer=trainer), pool=pool)


class _AlwaysFailSearcher:
    """Registry factory helper: every ``run_step`` raises, deterministically."""

    @staticmethod
    def build(options, pool):
        flaky = _FlakyOnceSearcher.build(options, pool)

        def explode(state):
            raise RuntimeError("deterministic shard failure (injected)")

        flaky.run_step = explode
        return flaky


# ---------------------------------------------------------------------------- fault tolerance
class TestFaultTolerance:
    """The satellite property: an injected worker kill mid-step must never change the
    aggregated deterministic report -- whether the orchestrator self-heals by
    requeueing within one run, or the operator re-runs with resume."""

    KILLED_SHARD = "eras-wn18rr_like-seed0-b0"

    def _pool_config(self, **overrides) -> SweepConfig:
        return _sweep_config(
            budgets=(SearchBudget(max_steps=2),), search_epochs=2, max_workers=2, **overrides
        )

    def test_worker_crash_is_requeued_and_bit_identical(self, tmp_path, monkeypatch):
        clean = SweepOrchestrator(self._pool_config(), tmp_path / "clean").run()

        monkeypatch.setenv(KILL_ENV_VAR, f"{self.KILLED_SHARD}@1")
        healed_dir = tmp_path / "healed"
        healed = SweepOrchestrator(self._pool_config(max_shard_retries=1), healed_dir).run()

        assert (healed_dir / "shards" / self.KILLED_SHARD / "kill.fired").is_file()
        assert healed.ok
        assert healed.payload["shards"][self.KILLED_SHARD]["attempt"] == 2
        assert strip_timing(healed.payload) == strip_timing(clean.payload)

    def test_retries_exhausted_then_resume_is_bit_identical(self, tmp_path, monkeypatch):
        clean = SweepOrchestrator(self._pool_config(), tmp_path / "clean").run()

        monkeypatch.setenv(KILL_ENV_VAR, f"{self.KILLED_SHARD}@1")
        sweep_dir = tmp_path / "killed"
        first = SweepOrchestrator(self._pool_config(max_shard_retries=0), sweep_dir).run()
        assert not first.ok and first.failed == (self.KILLED_SHARD,)
        assert first.payload["shards"][self.KILLED_SHARD]["status"] == "failed"
        # The killed shard checkpointed step 1 before dying, so resume continues it.
        assert (sweep_dir / "shards" / self.KILLED_SHARD / "checkpoint.json").is_file()

        resumed = SweepOrchestrator.from_directory(sweep_dir).run(resume=True)
        assert resumed.ok
        assert strip_timing(resumed.payload) == strip_timing(clean.payload)

    def test_resume_without_manifest_is_rejected(self, tmp_path):
        """run(resume=True) on a manifest-less directory must not silently start fresh."""
        with pytest.raises(SweepError, match="cannot resume"):
            SweepOrchestrator(_sweep_config(), tmp_path / "absent").run(resume=True)
        assert not (tmp_path / "absent").exists()  # and it must not create one either

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_python_level_failure_retried_identically_across_worker_counts(
        self, tmp_path, monkeypatch, max_workers
    ):
        """A transient in-shard exception gets the same max_shard_retries+1 attempt
        budget whether shards run in-process or on the pool."""
        from repro.search import register_searcher, unregister_searcher

        register_searcher("flaky-once-test", _FlakyOnceSearcher.build)
        try:
            marker = tmp_path / f"flaky-{max_workers}.marker"
            monkeypatch.setenv("REPRO_TEST_FLAKY_MARKER", str(marker))
            config = _sweep_config(
                searchers=("flaky-once-test",), seeds=(0,),
                max_workers=max_workers, max_shard_retries=1,
            )
            report = SweepOrchestrator(config, tmp_path / f"sweep{max_workers}").run()
            assert report.ok
            assert marker.exists()  # the first attempt really did raise
        finally:
            unregister_searcher("flaky-once-test")

    def test_failure_report_identical_across_worker_counts(self, tmp_path):
        """A deterministically failing sweep writes the same report (error strings
        included) for any --max-workers, like a successful one does."""
        from repro.search import register_searcher, unregister_searcher

        register_searcher("alwaysfail-test", _AlwaysFailSearcher.build)
        try:
            reports = []
            for max_workers in (1, 2):
                config = _sweep_config(
                    searchers=("alwaysfail-test", "random"), seeds=(0,),
                    max_workers=max_workers, max_shard_retries=1,
                )
                reports.append(SweepOrchestrator(config, tmp_path / f"w{max_workers}").run())
            assert reports[0].failed == reports[1].failed == ("alwaysfail-test-wn18rr_like-seed0-b0",)
            assert strip_timing(reports[0].payload) == strip_timing(reports[1].payload)
            failed_entry = reports[0].payload["shards"]["alwaysfail-test-wn18rr_like-seed0-b0"]
            assert "deterministic shard failure" in failed_entry["error"]
        finally:
            unregister_searcher("alwaysfail-test")


# ---------------------------------------------------------------------------- CLI
class TestSweepCLI:
    SWEEP_FLAGS = [
        "--searchers", "eras", "random",
        "--seeds", "0",
        "--datasets", "wn18rr_like",
        "--scale", "0.4",
        "--groups", "2",
        "--epochs", "1",
        "--derive-samples", "4",
        "--dim", "16",
        "--proxy-epochs", "2",
        "--budget-steps", "1",
        "--no-train",
        "--max-workers", "1",
    ]

    def test_sweep_and_resume_round_trip(self, tmp_path, capsys):
        from repro.runtime.cli import main

        sweep_dir = tmp_path / "sweep"
        assert main(["sweep", "--sweep-dir", str(sweep_dir), *self.SWEEP_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "Sweep report" in out and "report.json" in out
        assert (sweep_dir / "report.md").is_file()

        assert main(["sweep", "--resume", str(sweep_dir)]) == 0
        assert "2/2 shards completed" in capsys.readouterr().out

    def test_fresh_sweep_requires_directory(self, capsys):
        from repro.runtime.cli import main

        assert main(["sweep", "--no-train"]) == 2
        assert "--sweep-dir" in capsys.readouterr().err

    def test_dir_and_resume_are_mutually_exclusive(self, tmp_path, capsys):
        from repro.runtime.cli import main

        code = main(["sweep", "--sweep-dir", str(tmp_path / "a"), "--resume", str(tmp_path / "b")])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_resume_of_missing_directory_fails(self, tmp_path, capsys):
        from repro.runtime.cli import main

        assert main(["sweep", "--resume", str(tmp_path / "absent")]) == 2
        assert "manifest" in capsys.readouterr().err

    def test_resume_rejects_grid_flags(self, tmp_path, capsys):
        """--resume runs the manifest's grid; extra grid flags must error, not be ignored."""
        from repro.runtime.cli import main

        sweep_dir = tmp_path / "sweep"
        assert main(["sweep", "--sweep-dir", str(sweep_dir), *self.SWEEP_FLAGS]) == 0
        capsys.readouterr()
        assert main(["sweep", "--resume", str(sweep_dir), "--seeds", "0", "1", "2"]) == 2
        assert "--seeds" in capsys.readouterr().err
