"""Tests for Embedding and Linear layers plus initialisers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Embedding, Linear, init


class TestEmbedding:
    def test_lookup_shape_and_values(self):
        embedding = Embedding(10, 4, seed=0)
        out = embedding(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_out_of_range_raises(self):
        embedding = Embedding(5, 4, seed=0)
        with pytest.raises(IndexError):
            embedding(np.array([5]))
        with pytest.raises(IndexError):
            embedding(np.array([-1]))

    def test_gradient_only_touches_looked_up_rows(self):
        embedding = Embedding(6, 3, seed=0)
        out = embedding(np.array([2, 4]))
        out.sum().backward()
        grad = embedding.weight.grad
        assert np.allclose(grad[[0, 1, 3, 5]], 0.0)
        assert np.allclose(grad[[2, 4]], 1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)
        with pytest.raises(ValueError):
            Embedding(4, 0)

    def test_all_returns_full_table(self):
        embedding = Embedding(7, 2, seed=0)
        assert embedding.all().shape == (7, 2)

    def test_deterministic_seeding(self):
        first = Embedding(5, 3, seed=42)
        second = Embedding(5, 3, seed=42)
        np.testing.assert_allclose(first.weight.data, second.weight.data)


class TestLinear:
    def test_forward_matches_numpy(self):
        layer = Linear(3, 2, seed=0)
        x = np.random.default_rng(0).normal(size=(5, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, seed=0)
        assert len(layer.parameters()) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, seed=0)
        out = layer(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestInitialisers:
    def test_uniform_range(self):
        values = init.uniform((1000,), -0.2, 0.2, seed=0)
        assert values.min() >= -0.2 and values.max() < 0.2

    def test_normal_statistics(self):
        values = init.normal((5000,), mean=1.0, std=0.5, seed=0)
        assert abs(values.mean() - 1.0) < 0.05
        assert abs(values.std() - 0.5) < 0.05

    def test_xavier_limits(self):
        values = init.xavier_uniform((100, 100), seed=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(values).max() <= limit

    def test_xavier_requires_2d(self):
        with pytest.raises(ValueError):
            init.xavier_uniform((10,))
        with pytest.raises(ValueError):
            init.xavier_normal((10,))

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 2)), 0.0)
