"""Documentation gates.

Three invariants keep the docs honest:

1. every module under ``repro`` carries a module docstring;
2. the audited public dataclasses document every one of their fields (the class
   docstring must mention each field by name — paper symbol, default and valid range
   live there);
3. every ``python -m repro`` invocation inside fenced code blocks of ``docs/*.md`` and
   ``README.md`` uses only subcommands and flags that exist in the argparse parsers.

CI runs this module in its docs job, so documentation drift fails the build.
"""

from __future__ import annotations

import dataclasses
import importlib
import pkgutil
import shlex
from pathlib import Path
from typing import Iterator, List, Tuple

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]


# ---------------------------------------------------------------------------- docstrings
def _iter_module_names() -> Iterator[str]:
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_iter_module_names()))
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a module docstring"


def _audited_dataclasses():
    from repro.kg.cache import DatasetCacheMeta
    from repro.models.trainer import TrainerConfig
    from repro.runtime.orchestrator import ShardSpec, SweepConfig, SweepReport
    from repro.runtime.runner import RunConfig, RunReport
    from repro.search.autosf import AutoSFConfig, AutoSFSearchState
    from repro.search.base import SearchBudget
    from repro.search.bayes_search import BayesSearchConfig, BayesSearchState
    from repro.search.controller import ControllerConfig
    from repro.search.eras import ERASConfig, ERASSearchState
    from repro.search.random_search import RandomSearchConfig, RandomSearchState
    from repro.search.registry import SearcherOptions
    from repro.search.result import Candidate, SearchResult, TracePoint
    from repro.search.supernet import SupernetConfig
    from repro.search.variants import DifferentiableSearchState
    from repro.runtime.shm import BundleHandle, SegmentSpec
    from repro.serve.frontend import FrontendConfig, ReloadConfig
    from repro.serve.service import ServiceConfig
    from repro.stream.delta import GraphDelta

    return [
        DatasetCacheMeta,
        ServiceConfig,
        FrontendConfig,
        ReloadConfig,
        GraphDelta,
        SegmentSpec,
        BundleHandle,
        SearchBudget,
        SearcherOptions,
        ERASConfig,
        ERASSearchState,
        ControllerConfig,
        SupernetConfig,
        AutoSFConfig,
        AutoSFSearchState,
        RandomSearchConfig,
        RandomSearchState,
        BayesSearchConfig,
        BayesSearchState,
        DifferentiableSearchState,
        TrainerConfig,
        Candidate,
        TracePoint,
        SearchResult,
        RunConfig,
        RunReport,
        SweepConfig,
        ShardSpec,
        SweepReport,
    ]


@pytest.mark.parametrize("cls", _audited_dataclasses(), ids=lambda cls: cls.__name__)
def test_public_dataclass_documents_every_field(cls):
    doc = cls.__doc__ or ""
    assert doc.strip(), f"{cls.__name__} lacks a class docstring"
    undocumented = [field.name for field in dataclasses.fields(cls) if field.name not in doc]
    assert not undocumented, (
        f"{cls.__name__} docstring does not mention field(s) {undocumented}; document "
        "each field's meaning (paper symbol), default and valid range"
    )


# ---------------------------------------------------------------------------- docs files
def test_docs_exist_and_are_linked_from_readme():
    architecture = REPO_ROOT / "docs" / "ARCHITECTURE.md"
    cli = REPO_ROOT / "docs" / "CLI.md"
    datasets = REPO_ROOT / "docs" / "DATASETS.md"
    assert architecture.is_file() and cli.is_file() and datasets.is_file()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme, "README must link docs/ARCHITECTURE.md"
    assert "docs/CLI.md" in readme, "README must link docs/CLI.md"
    assert "docs/DATASETS.md" in readme, "README must link docs/DATASETS.md"
    assert "DATASETS.md" in architecture.read_text(encoding="utf-8"), (
        "ARCHITECTURE must link DATASETS.md"
    )


def _fenced_code_lines(text: str) -> List[str]:
    """Lines inside ``` fenced blocks, with backslash continuations joined."""
    lines: List[str] = []
    in_fence = False
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            if lines and lines[-1].endswith("\\"):
                lines[-1] = lines[-1][:-1] + " " + stripped
            else:
                lines.append(stripped)
    return lines


def _documented_invocations() -> List[Tuple[str, str, List[str]]]:
    """Every ``python -m repro`` command line in the docs: (file, line, tokens)."""
    invocations = []
    for path in DOC_FILES:
        for line in _fenced_code_lines(path.read_text(encoding="utf-8")):
            marker = "python -m repro"
            position = line.find(marker)
            if position < 0:
                continue
            # Inline mentions inside diagrams may close with a backtick; cut there.
            rest = line[position + len(marker):].split("`")[0].strip()
            invocations.append((path.name, line, shlex.split(rest)))
    return invocations


def test_docs_reference_at_least_one_invocation_per_subcommand():
    commands = {tokens[0] for _, _, tokens in _documented_invocations() if tokens and not tokens[0].startswith("-")}
    assert {"search", "sweep", "train", "serve", "bench"} <= commands, (
        f"docs must show every subcommand at least once, found only {sorted(commands)}"
    )


def test_docs_show_the_scale_workload_and_directory_datasets():
    """The out-of-core additions must be demonstrated, not just implemented."""
    bench_lines = [
        tokens
        for _, _, tokens in _documented_invocations()
        if tokens and tokens[0] == "bench"
    ]
    assert any("scale" in tokens for tokens in bench_lines), (
        "docs must show `python -m repro bench --workload scale` at least once"
    )
    datasets_doc = (REPO_ROOT / "docs" / "DATASETS.md").read_text(encoding="utf-8")
    for needle in (".repro-cache", "train.txt", "resolve_dataset", "--mmap"):
        assert needle in datasets_doc, f"docs/DATASETS.md must cover {needle!r}"


def test_documented_cli_invocations_use_real_flags():
    from repro.runtime.cli import subcommand_parsers

    parsers = subcommand_parsers()
    problems = []
    for file_name, line, tokens in _documented_invocations():
        if not tokens:
            continue
        command = tokens[0]
        if command.startswith("-"):
            continue  # `python -m repro --help`
        if command not in parsers:
            problems.append(f"{file_name}: unknown subcommand {command!r} in: {line}")
            continue
        known = set(parsers[command]._option_string_actions)
        for token in tokens[1:]:
            if not token.startswith("--"):
                continue
            flag = token.split("=", 1)[0]
            if flag not in known:
                problems.append(f"{file_name}: {command} has no flag {flag!r} in: {line}")
    assert not problems, "\n".join(problems)


def test_cli_help_mentions_every_subcommand():
    from repro.runtime.cli import build_parser

    help_text = build_parser().format_help()
    for command in ("search", "sweep", "train", "serve", "bench"):
        assert command in help_text
