"""Tests for the LSTM cell and unrolled LSTM."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import LSTM, LSTMCell


class TestLSTMCell:
    def test_output_shapes(self):
        cell = LSTMCell(5, 8, seed=0)
        hidden, cell_state = cell(Tensor(np.zeros((3, 5))))
        assert hidden.shape == (3, 8)
        assert cell_state.shape == (3, 8)

    def test_initial_state_is_zero(self):
        cell = LSTMCell(4, 6, seed=0)
        hidden, cell_state = cell.initial_state(2)
        np.testing.assert_allclose(hidden.data, 0.0)
        np.testing.assert_allclose(cell_state.data, 0.0)

    def test_state_changes_with_input(self, rng):
        cell = LSTMCell(4, 6, seed=0)
        h1, _ = cell(Tensor(rng.normal(size=(1, 4))))
        h2, _ = cell(Tensor(rng.normal(size=(1, 4))))
        assert not np.allclose(h1.data, h2.data)

    def test_rejects_wrong_rank(self):
        cell = LSTMCell(4, 6, seed=0)
        with pytest.raises(ValueError):
            cell(Tensor(np.zeros(4)))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)

    def test_gradients_reach_all_parameters(self, rng):
        cell = LSTMCell(3, 5, seed=0)
        hidden, _ = cell(Tensor(rng.normal(size=(2, 3)), requires_grad=True))
        (hidden * hidden).sum().backward()
        assert all(p.grad is not None for p in cell.parameters())

    def test_hidden_values_bounded_by_tanh(self, rng):
        cell = LSTMCell(3, 5, seed=0)
        hidden, _ = cell(Tensor(rng.normal(size=(10, 3)) * 10))
        assert np.abs(hidden.data).max() <= 1.0


class TestLSTM:
    def test_sequence_output_shape(self, rng):
        lstm = LSTM(4, 6, seed=0)
        outputs, (hidden, cell_state) = lstm(Tensor(rng.normal(size=(2, 5, 4))))
        assert outputs.shape == (2, 5, 6)
        assert hidden.shape == (2, 6)
        assert cell_state.shape == (2, 6)

    def test_last_output_equals_final_hidden(self, rng):
        lstm = LSTM(4, 6, seed=0)
        outputs, (hidden, _) = lstm(Tensor(rng.normal(size=(1, 3, 4))))
        np.testing.assert_allclose(outputs.data[:, -1, :], hidden.data)

    def test_rejects_wrong_rank(self):
        lstm = LSTM(4, 6, seed=0)
        with pytest.raises(ValueError):
            lstm(Tensor(np.zeros((2, 4))))

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(3, 4, seed=0)
        sequence = Tensor(rng.normal(size=(1, 6, 3)), requires_grad=True)
        outputs, _ = lstm(sequence)
        outputs.sum().backward()
        assert sequence.grad is not None
        assert not np.allclose(sequence.grad[:, 0, :], 0.0)
