"""End-to-end integration test: generate data, search, retrain, evaluate, report.

This mirrors the quickstart example and exercises every layer of the library together on
the tiny fixture graph.
"""

import numpy as np

from repro.bench import TableReport
from repro.eval import PatternLevelEvaluator, RankingEvaluator, TripletClassifier
from repro.models import KGEModel, Trainer, TrainerConfig
from repro.scoring import named_structure, render_relation_aware
from repro.search import ControllerConfig, ERASConfig, ERASSearcher, SupernetConfig
from repro.utils.serialization import save_json, to_jsonable


def test_full_pipeline_on_tiny_graph(tiny_graph, tmp_path):
    # 1. Search relation-aware scoring functions with a tiny budget.
    config = ERASConfig(
        num_blocks=4,
        num_groups=2,
        num_samples=2,
        epochs=2,
        derive_samples=4,
        supernet=SupernetConfig(dim=16, batch_size=64, valid_batch_size=32, seed=0),
        controller=ControllerConfig(hidden_size=16, token_embedding_dim=8, seed=0),
        seed=0,
    )
    search_result = ERASSearcher(config).search(tiny_graph)
    assert search_result.best_candidate.num_groups == 2

    # 2. Re-train the derived candidate from scratch.
    model = KGEModel(
        tiny_graph.num_entities,
        tiny_graph.num_relations,
        dim=16,
        scorers=search_result.best_structures(),
        assignment=search_result.best_assignment,
        seed=0,
    )
    training = Trainer(TrainerConfig(epochs=8, batch_size=64, valid_every=4, patience=2, seed=0)).fit(
        model, tiny_graph
    )
    assert training.best_valid_mrr > 0

    # 3. Evaluate: link prediction, pattern-level metrics, triplet classification.
    ranking = RankingEvaluator(tiny_graph).evaluate(model, split="test")
    assert 0.0 < ranking.mrr <= 1.0
    pattern_hit1 = PatternLevelEvaluator(tiny_graph).hit1_by_pattern(model, split="test")
    assert pattern_hit1
    classification = TripletClassifier(tiny_graph, seed=0).evaluate(model)
    assert 0.0 <= classification.accuracy <= 1.0

    # 4. Render and persist a report of the run.
    rendering = render_relation_aware(search_result.best_structures())
    assert "group 1" in rendering
    report = TableReport("integration")
    report.add_row(model="ERAS", **ranking.as_row())
    report.add_row(model="DistMult-baseline", MRR=0.0)
    assert len(report.rows) == 2
    path = save_json(
        {
            "search": search_result.summary(),
            "assignment": to_jsonable(search_result.best_assignment),
            "test": ranking.as_row(),
        },
        tmp_path / "run.json",
    )
    assert path.exists()


def test_relation_aware_model_can_mix_classics(tiny_graph):
    """A relation-aware model assigning DistMult to symmetric relations and SimplE to the
    rest must score consistently and train end-to-end."""
    from repro.kg import RelationPattern, RelationPatternAnalyzer

    analyzer = RelationPatternAnalyzer()
    symmetric = set(analyzer.relations_with_pattern(tiny_graph, RelationPattern.SYMMETRIC))
    assignment = np.array([0 if r in symmetric else 1 for r in range(tiny_graph.num_relations)])
    model = KGEModel(
        tiny_graph.num_entities,
        tiny_graph.num_relations,
        dim=16,
        scorers=[named_structure("distmult"), named_structure("simple")],
        assignment=assignment,
        seed=0,
    )
    result = Trainer(TrainerConfig(epochs=6, batch_size=64, valid_every=3, patience=2, seed=0)).fit(
        model, tiny_graph
    )
    assert result.best_valid_mrr > 0
