"""Shared fixtures: small synthetic graphs and cheaply trained models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import PatternSpec, SyntheticKGConfig, SyntheticKGGenerator, load_benchmark
from repro.kg.patterns import RelationPattern
from repro.models import KGEModel, Trainer, TrainerConfig
from repro.scoring import named_structure


def make_tiny_config(name: str = "tiny") -> SyntheticKGConfig:
    """A minimal but pattern-complete dataset configuration used across the test-suite."""
    return SyntheticKGConfig(
        name=name,
        num_entities=40,
        pattern_specs=(
            PatternSpec(RelationPattern.SYMMETRIC, 2),
            PatternSpec(RelationPattern.ANTI_SYMMETRIC, 2),
            PatternSpec(RelationPattern.INVERSE, 2),
            PatternSpec(RelationPattern.GENERAL_ASYMMETRIC, 1),
        ),
        triples_per_relation=30,
        latent_dim=6,
    )


@pytest.fixture(scope="session")
def tiny_graph():
    """A 40-entity, 7-relation graph that generates in milliseconds."""
    return SyntheticKGGenerator(make_tiny_config()).generate(seed=0)


@pytest.fixture(scope="session")
def small_graph():
    """A scaled-down wn18rr-like benchmark for integration tests."""
    return load_benchmark("wn18rr_like", scale=0.6, seed=1)


@pytest.fixture(scope="session")
def trained_tiny_model(tiny_graph):
    """A DistMult model trained briefly on the tiny graph (shared by evaluation tests)."""
    model = KGEModel(
        num_entities=tiny_graph.num_entities,
        num_relations=tiny_graph.num_relations,
        dim=16,
        scorers=named_structure("distmult"),
        seed=0,
    )
    config = TrainerConfig(epochs=12, batch_size=128, learning_rate=0.5, valid_every=4, patience=3, seed=0)
    Trainer(config).fit(model, tiny_graph)
    return model


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session", autouse=True)
def shm_leak_guard():
    """Fail the session if any ``repro_shm_*`` segment outlives the full test run.

    Baseline-diffed against the segments present at session start, so a concurrently
    running repro process on the same host can never false-positive the check.  The
    teardown first shuts the warm pools and unpublishes everything this process still
    owns -- exactly what a clean interpreter exit does via ``atexit`` -- then asserts
    ``/dev/shm`` holds nothing new.
    """
    import gc

    from repro.runtime import shm
    from repro.runtime.evaluation import release_one_shot_model
    from repro.runtime.pool import shutdown_warm_pools

    baseline = set(shm.leaked_segments())
    yield
    shutdown_warm_pools()
    release_one_shot_model()
    gc.collect()
    shm.unpublish_all()
    leaked = [name for name in shm.leaked_segments() if name not in baseline]
    assert leaked == [], f"shared-memory segments leaked by the test session: {leaked}"
