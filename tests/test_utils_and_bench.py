"""Tests for utilities (rng, config, timer, serialization) and the bench reporting layer."""

import time

import numpy as np
import pytest

from repro.bench import SeriesReport, TableReport, format_table
from repro.bench.workloads import BENCH_DATASETS, bench_graph, quick_eras_config, quick_trainer_config
from repro.utils import Timer, new_rng, spawn_rng
from repro.utils.config import as_dict, validate_in_range, validate_non_negative, validate_positive
from repro.utils.logging import configure_logging, get_logger
from repro.utils.rng import RngMixin
from repro.utils.serialization import load_json, save_json, to_jsonable


class TestRng:
    def test_new_rng_accepts_seed_and_generator(self):
        first = new_rng(42)
        second = new_rng(42)
        assert first.integers(0, 100) == second.integers(0, 100)
        existing = new_rng(0)
        assert new_rng(existing) is existing

    def test_spawn_rng_children_are_independent(self):
        children = spawn_rng(new_rng(0), 3)
        assert len(children) == 3
        values = [child.integers(0, 1_000_000) for child in children]
        assert len(set(values)) == 3

    def test_spawn_rng_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rng(new_rng(0), -1)

    def test_rng_mixin_lazy_and_reseedable(self):
        class Component(RngMixin):
            pass

        component = Component(seed=5)
        first = component.rng.integers(0, 100)
        component.reseed(5)
        assert component.rng.integers(0, 100) == first


class TestConfigHelpers:
    def test_validators(self):
        validate_positive("x", 1.0)
        validate_non_negative("x", 0.0)
        validate_in_range("x", 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            validate_positive("x", 0.0)
        with pytest.raises(ValueError):
            validate_non_negative("x", -1.0)
        with pytest.raises(ValueError):
            validate_in_range("x", 2.0, 0.0, 1.0)

    def test_as_dict_nested(self):
        config = quick_trainer_config()
        converted = as_dict(config)
        assert converted["epochs"] == config.epochs
        nested = as_dict(quick_eras_config())
        assert nested["supernet"]["dim"] == quick_eras_config().supernet.dim


class TestTimer:
    def test_accumulates_sessions(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first
        timer.reset()
        assert timer.elapsed == 0.0

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()
        with pytest.raises(RuntimeError):
            timer.stop()

    def test_running_flag(self):
        timer = Timer()
        assert not timer.running
        timer.start()
        assert timer.running
        timer.stop()


class TestSerialization:
    def test_to_jsonable_handles_numpy(self):
        converted = to_jsonable({"a": np.int64(3), "b": np.array([1.0, 2.0]), "c": (np.float64(0.5),)})
        assert converted == {"a": 3, "b": [1.0, 2.0], "c": [0.5]}

    def test_save_and_load_roundtrip(self, tmp_path):
        payload = {"metrics": {"mrr": 0.42}, "ranks": np.arange(3)}
        path = save_json(payload, tmp_path / "result.json")
        assert load_json(path) == {"metrics": {"mrr": 0.42}, "ranks": [0, 1, 2]}


class TestLogging:
    def test_logger_namespacing(self):
        assert get_logger("search").name == "repro.search"
        assert get_logger("repro.kg").name == "repro.kg"

    def test_configure_logging_idempotent(self):
        configure_logging()
        configure_logging()
        assert len(get_logger("repro").handlers) <= 1


class TestReporting:
    def test_format_table_alignment_and_missing_cells(self):
        rows = [{"model": "DistMult", "MRR": 0.82}, {"model": "ComplEx"}]
        text = format_table(rows, title="Table VI")
        assert "Table VI" in text and "DistMult" in text and "MRR" in text

    def test_empty_table(self):
        assert "(empty)" in format_table([])

    def test_table_report_columns(self):
        report = TableReport("demo")
        report.add_row(model="a", mrr=0.1)
        report.add_row(model="b", mrr=0.2)
        assert report.column("mrr") == [0.1, 0.2]
        assert "demo" in report.render()

    def test_series_report(self):
        report = SeriesReport("figure", x_label="time", y_label="mrr")
        report.add_point("ERAS", 1.0, 0.3)
        report.add_point("ERAS", 2.0, 0.4)
        report.add_series("AutoSF", [(1.0, 0.1)])
        assert report.final_value("ERAS") == pytest.approx(0.4)
        assert "AutoSF" in report.render()


class TestWorkloads:
    def test_bench_dataset_names_cover_paper(self):
        assert set(BENCH_DATASETS) == {
            "wn18_like", "wn18rr_like", "fb15k_like", "fb15k237_like", "yago3_like"
        }

    def test_bench_graph_scales(self):
        small = bench_graph("wn18rr_like", scale=0.5, seed=2)
        full = bench_graph("wn18rr_like", scale=1.0, seed=2)
        assert small.num_entities < full.num_entities
