"""Tests for the search-space building blocks: space, supernet, controller, clustering,
predictor, results."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.search import (
    ArchitectureController,
    Candidate,
    ControllerConfig,
    EMRelationClustering,
    RelationAwareSearchSpace,
    SearchResult,
    SharedEmbeddingSupernet,
    StructurePerformancePredictor,
    SupernetConfig,
    TracePoint,
)
from repro.scoring import BlockStructure, named_structure
from repro.search.controller import ReinforceUpdater
from repro.search.predictor import candidate_features, structure_features


class TestSearchSpace:
    def test_geometry(self):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=3)
        assert space.tokens_per_structure == 16
        assert space.token_count == 48
        assert space.num_operations == 9
        assert space.log10_size() == pytest.approx(48 * np.log10(9))

    def test_relation_aware_space_is_larger_than_task_aware(self):
        relation_aware = RelationAwareSearchSpace(num_blocks=4, num_groups=3)
        task_aware = relation_aware.task_aware()
        assert relation_aware.log10_size() > task_aware.log10_size()
        assert task_aware.num_groups == 1

    def test_token_structure_roundtrip(self, rng):
        space = RelationAwareSearchSpace(num_blocks=3, num_groups=2)
        candidate = space.random_candidate(rng)
        tokens = space.tokens_from_structures(candidate)
        decoded = space.structures_from_tokens(tokens)
        assert all(a == b for a, b in zip(candidate, decoded))

    def test_token_length_validation(self):
        space = RelationAwareSearchSpace(num_blocks=2, num_groups=2)
        with pytest.raises(ValueError):
            space.structures_from_tokens([0, 1, 2])
        with pytest.raises(ValueError):
            space.tokens_from_structures([BlockStructure.diagonal(2)])

    def test_exploitative_constraint(self, rng):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=1)
        assert space.satisfies_exploitative_constraint([BlockStructure.diagonal(4)])
        missing_block = BlockStructure([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 2, 0], [0, 0, 0, 3]])
        assert not space.satisfies_exploitative_constraint([missing_block])

    def test_budget_constraint(self):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=1, max_items_per_structure=4)
        assert space.satisfies_exploitative_constraint([BlockStructure.diagonal(4)])
        dense = named_structure("complex")
        assert not space.satisfies_exploitative_constraint([dense])

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RelationAwareSearchSpace(num_blocks=0)
        with pytest.raises(ValueError):
            RelationAwareSearchSpace(num_blocks=4, num_groups=0)
        with pytest.raises(ValueError):
            RelationAwareSearchSpace(num_blocks=4, num_groups=1, max_items_per_structure=2)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_random_candidates_satisfy_constraint(self, seed):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=2)
        rng = np.random.default_rng(seed)
        candidate = space.random_candidate(rng)
        assert space.satisfies_exploitative_constraint(candidate)


class TestCandidateAndResult:
    def test_candidate_requires_structures(self):
        with pytest.raises(ValueError):
            Candidate(())

    def test_signature_is_hashable_and_stable(self):
        candidate = Candidate((BlockStructure.diagonal(3),))
        assert candidate.signature() == Candidate((BlockStructure.diagonal(3),)).signature()
        assert hash(candidate.signature())

    def test_search_result_helpers(self):
        candidate = Candidate((BlockStructure.diagonal(2), BlockStructure.zeros(2)))
        result = SearchResult(
            searcher="test", dataset="toy", best_candidate=candidate,
            best_assignment=np.array([0, 1, 1]), best_valid_mrr=0.5,
            search_seconds=1.0, evaluations=3,
            trace=[TracePoint(0.1, 1, 0.2)],
        )
        assert result.group_of_relation(2) == 1
        assert result.relations_per_group() == {0: [0], 1: [1, 2]}
        assert result.summary()["groups"] == 2
        assert len(result.best_structures()) == 2


class TestSupernet:
    def test_training_step_reduces_loss_over_time(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=1, config=SupernetConfig(dim=16, seed=0))
        candidate = Candidate((named_structure("distmult"),))
        losses = []
        for _ in range(8):
            for batch in supernet.training_batches(seed=0):
                losses.append(supernet.training_step([candidate], batch))
        assert losses[-1] < losses[0]

    def test_reward_in_unit_interval(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=1, config=SupernetConfig(dim=16, seed=0))
        candidate = Candidate((named_structure("distmult"),))
        reward = supernet.reward(candidate, supernet.sample_validation_batch())
        assert 0.0 < reward <= 1.0

    def test_neg_loss_reward_is_negative(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=1, config=SupernetConfig(dim=16, seed=0))
        candidate = Candidate((named_structure("distmult"),))
        assert supernet.reward(candidate, supernet.sample_validation_batch(), metric="neg_loss") < 0.0
        with pytest.raises(ValueError):
            supernet.reward(candidate, supernet.sample_validation_batch(), metric="hits")

    def test_group_count_mismatch_rejected(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=2, config=SupernetConfig(dim=16, seed=0))
        with pytest.raises(ValueError):
            supernet.reward(Candidate((named_structure("distmult"),)), supernet.sample_validation_batch())

    def test_assignment_validation(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=2, config=SupernetConfig(dim=16, seed=0))
        with pytest.raises(ValueError):
            supernet.set_assignment(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            supernet.set_assignment(np.full(tiny_graph.num_relations, 5, dtype=np.int64))

    def test_shared_embeddings_persist_across_candidates(self, tiny_graph):
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=1, config=SupernetConfig(dim=16, seed=0))
        before = supernet.relation_embeddings().copy()
        supernet.reward(Candidate((named_structure("complex"),)), supernet.sample_validation_batch())
        np.testing.assert_allclose(supernet.relation_embeddings(), before)


class TestController:
    def test_sample_shapes_and_validity(self, tiny_graph):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=2)
        controller = ArchitectureController(space, ControllerConfig(seed=0))
        samples = controller.sample(3)
        assert len(samples) == 3
        for sample in samples:
            assert sample.tokens.shape == (space.token_count,)
            assert sample.candidate.num_groups == 2
            assert sample.log_prob.requires_grad
            assert sample.entropy > 0

    def test_zero_bias_makes_sparse_candidates(self):
        space = RelationAwareSearchSpace(num_blocks=4, num_groups=1)
        sparse_controller = ArchitectureController(space, ControllerConfig(zero_operation_bias=4.0, seed=0))
        dense_controller = ArchitectureController(space, ControllerConfig(zero_operation_bias=-4.0, seed=0))
        sparse = np.mean([s.candidate.structures[0].nonzero_count() for s in sparse_controller.sample(10)])
        dense = np.mean([s.candidate.structures[0].nonzero_count() for s in dense_controller.sample(10)])
        assert sparse < dense

    def test_greedy_sampling_is_deterministic(self):
        space = RelationAwareSearchSpace(num_blocks=3, num_groups=1)
        controller = ArchitectureController(space, ControllerConfig(seed=0))
        first = controller.sample_one(greedy=True).tokens
        second = controller.sample_one(greedy=True).tokens
        np.testing.assert_array_equal(first, second)

    def test_sample_count_validation(self):
        space = RelationAwareSearchSpace(num_blocks=3, num_groups=1)
        controller = ArchitectureController(space, ControllerConfig(seed=0))
        with pytest.raises(ValueError):
            controller.sample(0)

    def test_reinforce_update_shifts_policy_towards_rewarded_sample(self):
        space = RelationAwareSearchSpace(num_blocks=2, num_groups=1)
        controller = ArchitectureController(space, ControllerConfig(seed=0, learning_rate=0.1))
        updater = ReinforceUpdater(controller)
        rng = np.random.default_rng(0)
        for _ in range(30):
            samples = controller.sample(4, rng=rng)
            # Reward samples that choose the zero op at position 0.
            rewards = [1.0 if s.tokens[0] == 0 else 0.0 for s in samples]
            updater.update(samples, rewards)
        frequencies = np.mean([controller.sample_one(rng=rng).tokens[0] == 0 for _ in range(30)])
        assert frequencies > 0.5
        assert updater.baseline is not None

    def test_reinforce_update_validation(self):
        space = RelationAwareSearchSpace(num_blocks=2, num_groups=1)
        controller = ArchitectureController(space, ControllerConfig(seed=0))
        updater = ReinforceUpdater(controller)
        with pytest.raises(ValueError):
            updater.update([], [])


class TestClustering:
    def test_well_separated_clusters_recovered(self, rng):
        first = rng.normal(loc=0.0, size=(10, 4))
        second = rng.normal(loc=8.0, size=(10, 4))
        embeddings = np.concatenate([first, second])
        assignment = EMRelationClustering(2, seed=0).assign(embeddings)
        assert len(set(assignment[:10])) == 1
        assert len(set(assignment[10:])) == 1
        assert assignment[0] != assignment[10]

    def test_single_group_everything_in_group_zero(self, rng):
        assignment = EMRelationClustering(1, seed=0).assign(rng.normal(size=(7, 3)))
        assert set(assignment) == {0}

    def test_more_groups_than_points(self, rng):
        assignment = EMRelationClustering(5, seed=0).assign(rng.normal(size=(3, 2)))
        assert assignment.shape == (3,)
        assert assignment.max() < 5

    def test_no_empty_groups(self, rng):
        embeddings = rng.normal(size=(12, 3))
        assignment = EMRelationClustering(3, seed=0).assign(embeddings)
        assert set(assignment) == {0, 1, 2}

    def test_warm_start_accepted(self, rng):
        embeddings = rng.normal(size=(8, 3))
        clustering = EMRelationClustering(2, seed=0)
        first = clustering.assign(embeddings)
        second = clustering.assign(embeddings, initial_assignment=first)
        assert second.shape == first.shape

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            EMRelationClustering(0)
        with pytest.raises(ValueError):
            EMRelationClustering(2).fit(rng.normal(size=(5,)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_inertia_non_negative_and_groups_valid(self, seed):
        rng = np.random.default_rng(seed)
        embeddings = rng.normal(size=(9, 4))
        result = EMRelationClustering(3, seed=0).fit(embeddings)
        assert result.inertia >= 0.0
        assert result.assignment.min() >= 0 and result.assignment.max() < 3


class TestPredictor:
    def test_features_are_deterministic_and_distinct(self):
        diag = structure_features(BlockStructure.diagonal(4))
        dense = structure_features(named_structure("complex"))
        np.testing.assert_allclose(diag, structure_features(BlockStructure.diagonal(4)))
        assert not np.allclose(diag, dense)

    def test_candidate_features_concatenate(self):
        features = candidate_features([BlockStructure.diagonal(4), named_structure("simple")])
        assert features.shape == (2 * structure_features(BlockStructure.diagonal(4)).shape[0],)

    def test_predictor_learns_simple_signal(self, rng):
        predictor = StructurePerformancePredictor()
        # Performance proportional to the number of diagonal items: learnable from features.
        for _ in range(30):
            structure = BlockStructure.random(4, rng, require_all_blocks=False)
            performance = np.count_nonzero(np.diag(structure.entries)) / 4.0
            predictor.observe(structure, performance)
        good = BlockStructure.diagonal(4)
        bad = BlockStructure([[0, 1, 0, 0], [0, 0, 2, 0], [0, 0, 0, 3], [4, 0, 0, 0]])
        assert predictor.predict(good) > predictor.predict(bad)

    def test_rank_returns_top_k(self, rng):
        predictor = StructurePerformancePredictor()
        structures = [BlockStructure.random(4, rng, require_all_blocks=False) for _ in range(6)]
        for index, structure in enumerate(structures):
            predictor.observe(structure, index / 10.0)
        top = predictor.rank(structures, top_k=2)
        assert len(top) == 2
        with pytest.raises(ValueError):
            predictor.rank(structures, top_k=0)

    def test_untrained_predictor_returns_mean(self):
        predictor = StructurePerformancePredictor()
        assert predictor.predict(BlockStructure.diagonal(4)) == 0.0
        predictor.observe(BlockStructure.diagonal(4), 0.4)
        assert predictor.predict(BlockStructure.zeros(4)) == pytest.approx(0.4)

    def test_invalid_ridge(self):
        with pytest.raises(ValueError):
            StructurePerformancePredictor(ridge=0.0)
