"""Integration tests for the searchers: ERAS, AutoSF, random, Bayes and the variants.

These run on the tiny fixture graph with minimal budgets; they check that every searcher
produces a well-formed :class:`SearchResult` and that the paper's qualitative properties
(relation-aware space larger, one-shot search cheaper per evaluation, variants wired
correctly) hold.
"""

import dataclasses

import numpy as np
import pytest

from repro.models.trainer import TrainerConfig
from repro.search import (
    AutoSFConfig,
    AutoSFSearcher,
    BayesSearchConfig,
    BayesSearcher,
    ControllerConfig,
    ERASConfig,
    ERASSearcher,
    RandomSearchConfig,
    RandomSearcher,
    SupernetConfig,
    variants,
)
from repro.search.variants import ERASDifferentiableSearcher, pretrained_assignment, semantic_assignment


def _tiny_eras_config(num_groups=2, **overrides):
    config = ERASConfig(
        num_blocks=4,
        num_groups=num_groups,
        num_samples=2,
        epochs=2,
        derive_samples=4,
        supernet=SupernetConfig(dim=16, batch_size=64, valid_batch_size=32, seed=0),
        controller=ControllerConfig(hidden_size=16, token_embedding_dim=8, seed=0),
        seed=0,
    )
    return dataclasses.replace(config, **overrides)


def _tiny_trainer():
    return TrainerConfig(epochs=3, batch_size=64, valid_every=3, patience=1, seed=0)


def _check_result(result, graph, expected_groups):
    assert result.best_candidate.num_groups == expected_groups
    assert result.best_assignment.shape == (graph.num_relations,)
    assert result.best_assignment.max() < expected_groups
    assert result.search_seconds > 0
    assert result.evaluations > 0
    assert len(result.trace) > 0
    assert all(point.elapsed_seconds >= 0 for point in result.trace)


class TestERASSearcher:
    def test_search_produces_valid_result(self, tiny_graph):
        result = ERASSearcher(_tiny_eras_config()).search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=2)
        assert 0.0 <= result.best_valid_mrr <= 1.0
        assert "top_candidates" in result.extras
        assert len(result.extras["top_candidates"]) >= 1

    def test_structures_satisfy_exploitative_constraint(self, tiny_graph):
        result = ERASSearcher(_tiny_eras_config()).search(tiny_graph)
        for structure in result.best_structures():
            assert structure.uses_all_relation_blocks()

    def test_single_group_assignment_all_zero(self, tiny_graph):
        result = ERASSearcher(_tiny_eras_config(num_groups=1)).search(tiny_graph)
        assert set(result.best_assignment) == {0}

    def test_initial_assignment_fn_respected_when_fixed(self, tiny_graph):
        fixed = np.arange(tiny_graph.num_relations) % 2

        def assignment_fn(graph):
            return fixed

        config = _tiny_eras_config(update_assignment=False)
        result = ERASSearcher(config, initial_assignment_fn=assignment_fn).search(tiny_graph)
        np.testing.assert_array_equal(result.best_assignment, fixed)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ERASConfig(num_blocks=1)
        with pytest.raises(ValueError):
            ERASConfig(num_groups=0)
        with pytest.raises(ValueError):
            ERASConfig(reward_metric="accuracy")
        with pytest.raises(ValueError):
            ERASConfig(controller_steps=0)

    def test_search_with_batchless_training_split(self):
        """Regression: ``rewards`` was unbound when no training batch was ever yielded.

        A graph whose training split is empty produces zero supernet batches per epoch;
        the per-epoch trace point must then fall back to a 0.0 reward instead of raising
        ``NameError``.
        """
        from repro.kg import KnowledgeGraph, TripleSet

        rng = np.random.default_rng(0)
        def random_triples(n):
            return TripleSet(np.column_stack([
                rng.integers(0, 12, size=n),
                rng.integers(0, 3, size=n),
                rng.integers(0, 12, size=n),
            ]))

        graph = KnowledgeGraph(
            name="batchless",
            num_entities=12,
            num_relations=3,
            train=TripleSet(np.empty((0, 3), dtype=np.int64)),
            valid=random_triples(10),
            test=random_triples(5),
        )
        config = _tiny_eras_config(num_groups=1, epochs=1, derive_samples=2, anchor_candidates=False)
        result = ERASSearcher(config).search(graph)
        _check_result(result, graph, expected_groups=1)
        # The per-epoch trace points exist and carry the 0.0 fallback reward.
        epoch_points = [point for point in result.trace if point.note.startswith("epoch")]
        assert len(epoch_points) == 1
        assert epoch_points[0].valid_mrr == 0.0

    def test_trace_is_time_monotonic(self, tiny_graph):
        result = ERASSearcher(_tiny_eras_config()).search(tiny_graph)
        times = [point.elapsed_seconds for point in result.trace]
        assert times == sorted(times)


class TestAutoSFSearcher:
    def test_search_produces_valid_result(self, tiny_graph):
        config = AutoSFConfig(max_budget=5, num_parents=2, num_sampled_children=4, top_k=2,
                              embedding_dim=16, trainer=_tiny_trainer(), seed=0)
        result = AutoSFSearcher(config).search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=1)
        assert result.best_structures()[0].nonzero_count() >= 4

    def test_autosf_needs_more_wall_clock_per_evaluation_than_eras(self, tiny_graph):
        """The cost asymmetry of Table IX: stand-alone evaluation vs one-shot evaluation."""
        autosf = AutoSFSearcher(
            AutoSFConfig(max_budget=5, num_parents=2, num_sampled_children=4, top_k=2,
                         embedding_dim=16, trainer=_tiny_trainer(), seed=0)
        ).search(tiny_graph)
        eras = ERASSearcher(_tiny_eras_config()).search(tiny_graph)
        autosf_cost = autosf.search_seconds / autosf.evaluations
        eras_cost = eras.search_seconds / eras.evaluations
        assert autosf_cost > eras_cost

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoSFConfig(max_budget=2)
        with pytest.raises(ValueError):
            AutoSFConfig(num_parents=0)


class TestRandomAndBayes:
    def test_random_search_result(self, tiny_graph):
        config = RandomSearchConfig(num_candidates=3, embedding_dim=16, trainer=_tiny_trainer(), seed=0)
        result = RandomSearcher(config).search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=1)
        assert result.evaluations <= 3

    def test_random_trace_best_is_monotone(self, tiny_graph):
        config = RandomSearchConfig(num_candidates=4, embedding_dim=16, trainer=_tiny_trainer(), seed=0)
        result = RandomSearcher(config).search(tiny_graph)
        best_values = [point.valid_mrr for point in result.trace]
        assert best_values == sorted(best_values)

    def test_bayes_search_result(self, tiny_graph):
        config = BayesSearchConfig(num_candidates=4, initial_random=2, embedding_dim=16,
                                   trainer=_tiny_trainer(), seed=0)
        result = BayesSearcher(config).search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomSearchConfig(num_candidates=0)
        with pytest.raises(ValueError):
            BayesSearchConfig(good_fraction=1.5)


class TestVariants:
    def test_factory_names(self):
        assert variants.eras_n1().name == "ERAS_N=1"
        assert variants.eras_los().name == "ERAS_los"
        assert variants.eras_sig().name == "ERAS_sig"
        assert variants.eras_pde().name == "ERAS_pde"
        assert variants.eras_smt().name == "ERAS_smt"
        assert variants.eras_dif().name == "ERAS_dif"

    def test_eras_n1_uses_single_group(self):
        assert variants.eras_n1(_tiny_eras_config()).config.num_groups == 1

    def test_eras_los_uses_loss_reward(self, tiny_graph):
        searcher = variants.eras_los(_tiny_eras_config())
        assert searcher.config.reward_metric == "neg_loss"
        result = searcher.search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=2)

    def test_eras_sig_single_level(self, tiny_graph):
        searcher = variants.eras_sig(_tiny_eras_config())
        assert searcher.config.controller_on_train
        result = searcher.search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=2)

    def test_semantic_assignment_groups_by_pattern(self, tiny_graph):
        assignment = semantic_assignment(tiny_graph, num_groups=4)
        assert assignment.shape == (tiny_graph.num_relations,)
        assert assignment.max() < 4
        assert len(set(assignment)) > 1

    def test_pretrained_assignment_shape(self, tiny_graph):
        assignment = pretrained_assignment(tiny_graph, num_groups=2, dim=8, epochs=2, seed=0)
        assert assignment.shape == (tiny_graph.num_relations,)
        assert assignment.max() < 2

    def test_eras_smt_fixed_grouping(self, tiny_graph):
        searcher = variants.eras_smt(_tiny_eras_config(num_groups=3))
        result = searcher.search(tiny_graph)
        np.testing.assert_array_equal(result.best_assignment, np.clip(semantic_assignment(tiny_graph, 3), 0, 2))

    def test_eras_dif_search(self, tiny_graph):
        searcher = ERASDifferentiableSearcher(_tiny_eras_config(num_groups=2, epochs=1))
        result = searcher.search(tiny_graph)
        _check_result(result, tiny_graph, expected_groups=2)
