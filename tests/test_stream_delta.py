"""Property tests for the streaming delta subsystem.

The central invariant: for every valid delta, the incrementally merged
:class:`~repro.kg.filter_index.FilterIndex` (``apply_delta``: searchsorted presence
checks + single-pass splice, no lexsort) is **bit-identical** to a from-scratch
rebuild over the spliced splits -- same CSR buffers, same dtypes, same query answers.
Randomized add-only / remove-only / mixed / empty deltas exercise it over long
sequential streams; the error paths must reject cleanly *before* any state changes.

Also covered here: the stale-memo guard (split arrays are frozen at construction, so
nobody can mutate a split behind the memoised index), :class:`MutableGraphView`
version monotonicity, the ``GraphDelta`` wire-format validation, and the serving
engine's selective cache invalidation + result re-stamping.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.kg.filter_index import FilterIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.serve.engine import LinkPredictionEngine, LinkQuery
from repro.stream import SPLIT_NAMES, DeltaValidationError, GraphDelta, MutableGraphView
from repro.utils.rng import new_rng

# The eight CSR buffers apply_delta must reproduce bit-identically.
CSR_FIELDS = FilterIndex.CSR_KEYS


def _encode(array, num_entities, num_relations):
    return (array[:, 0] * num_relations + array[:, 1]) * num_entities + array[:, 2]


def _random_graph(rng, num_entities=24, num_relations=6, sizes=(160, 40, 40)):
    """A random graph whose splits may share triples (exercises union semantics)."""
    pool = np.column_stack(
        [
            rng.integers(0, num_entities, size=400),
            rng.integers(0, num_relations, size=400),
            rng.integers(0, num_entities, size=400),
        ]
    ).astype(np.int64)
    splits = {}
    for name, size in zip(SPLIT_NAMES, sizes):
        # Sampling from one pool with replacement lets splits overlap.
        splits[name] = TripleSet(pool[rng.choice(len(pool), size=size, replace=False)].copy())
    return KnowledgeGraph(
        name="prop",
        num_entities=num_entities,
        num_relations=num_relations,
        train=splits["train"],
        valid=splits["valid"],
        test=splits["test"],
    )


def _random_delta(graph, rng, mode):
    """A valid random delta of the requested flavor against ``graph``'s current state."""
    adds, removes = {}, {}
    E, R = graph.num_entities, graph.num_relations
    for split in SPLIT_NAMES:
        array = np.asarray(getattr(graph, split).array)
        keys = _encode(array, E, R) if len(array) else np.array([], dtype=np.int64)
        if mode in ("mixed", "remove") and len(array) and rng.random() < 0.85:
            count = int(rng.integers(1, min(9, len(array) + 1)))
            removes[split] = np.unique(
                array[rng.choice(len(array), size=count, replace=False)], axis=0
            )
        if mode in ("mixed", "add") and rng.random() < 0.85:
            candidates = np.column_stack(
                [rng.integers(0, E, 40), rng.integers(0, R, 40), rng.integers(0, E, 40)]
            ).astype(np.int64)
            fresh = candidates[~np.isin(_encode(candidates, E, R), keys)]
            fresh = np.unique(fresh, axis=0)
            if split in removes and len(removes[split]):
                remove_keys = _encode(removes[split], E, R)
                fresh = fresh[~np.isin(_encode(fresh, E, R), remove_keys)]
            if len(fresh):
                adds[split] = fresh[: int(rng.integers(1, min(7, len(fresh)) + 1))]
    return GraphDelta.from_arrays(adds=adds, removes=removes)


def _assert_index_equals_rebuild(graph):
    merged = graph.filter_index()
    rebuilt = FilterIndex((graph.train, graph.valid, graph.test))
    merged_arrays, rebuilt_arrays = merged.csr_arrays(), rebuilt.csr_arrays()
    assert set(merged_arrays) == set(rebuilt_arrays)
    for field in CSR_FIELDS:
        assert field in merged_arrays
        assert merged_arrays[field].dtype == rebuilt_arrays[field].dtype, field
        assert np.array_equal(merged_arrays[field], rebuilt_arrays[field]), field
    # Spot-check the query surface on top of the raw buffers.
    rng = new_rng(13)
    for _ in range(8):
        head = int(rng.integers(graph.num_entities))
        relation = int(rng.integers(graph.num_relations))
        tail = int(rng.integers(graph.num_entities))
        assert merged.known_tails(head, relation) == rebuilt.known_tails(head, relation)
        assert merged.known_heads(relation, tail) == rebuilt.known_heads(relation, tail)
        assert merged.contains(head, relation, tail) == rebuilt.contains(head, relation, tail)
    sample = np.asarray(graph.valid.array[: min(16, len(graph.valid))])
    if len(sample):
        for direction in ("tail", "head"):
            merged_rows, merged_cols = merged.flat_filter_indices(sample, direction)
            rebuilt_rows, rebuilt_cols = rebuilt.flat_filter_indices(sample, direction)
            assert np.array_equal(merged_rows, rebuilt_rows)
            assert np.array_equal(merged_cols, rebuilt_cols)


# ---------------------------------------------------------------------------- equivalence
class TestMergeEqualsRebuild:
    @pytest.mark.parametrize("mode", ["mixed", "add", "remove"])
    def test_randomized_stream_stays_bit_identical(self, mode):
        rng = new_rng(hash(mode) % (2**31))
        view = MutableGraphView(_random_graph(rng))
        for step in range(12):
            delta = _random_delta(view.graph, rng, mode)
            previous = view.graph
            new_graph = view.apply(delta)
            assert new_graph.graph_version == previous.graph_version + 1
            _assert_index_equals_rebuild(new_graph)
            # Old snapshots are immutable: the previous index still answers.
            assert len(previous.filter_index()) >= 0

    def test_empty_delta_bumps_version_and_changes_nothing(self):
        rng = new_rng(3)
        view = MutableGraphView(_random_graph(rng))
        before = {name: np.asarray(getattr(view.graph, name).array).copy() for name in SPLIT_NAMES}
        index_before = view.graph.filter_index().csr_arrays()
        new_graph = view.apply(GraphDelta.from_arrays())
        assert new_graph.graph_version == 1
        for name in SPLIT_NAMES:
            assert np.array_equal(np.asarray(getattr(new_graph, name).array), before[name])
        index_after = new_graph.filter_index().csr_arrays()
        assert all(np.array_equal(index_before[k], index_after[k]) for k in index_before)

    def test_cross_split_semantics_keep_index_unchanged(self):
        """Removing a shared triple from one split only must not touch the index."""
        rng = new_rng(5)
        graph = _random_graph(rng)
        train = np.asarray(graph.train.array)
        valid = np.asarray(graph.valid.array)
        E, R = graph.num_entities, graph.num_relations
        shared = np.intersect1d(_encode(train, E, R), _encode(valid, E, R))
        assert len(shared), "pool sampling should produce shared train/valid triples"
        key = int(shared[0])
        triple = np.array([[key // (R * E), (key // E) % R, key % E]], dtype=np.int64)
        view = MutableGraphView(graph)
        before = graph.filter_index().csr_arrays()

        new_graph = view.apply(GraphDelta.from_arrays(removes={"train": triple}))
        after = new_graph.filter_index().csr_arrays()
        assert all(np.array_equal(before[k], after[k]) for k in before)
        assert len(new_graph.train) == len(graph.train) - 1

        # Adding a triple to a split that already holds it elsewhere: index no-op too.
        newer = view.apply(GraphDelta.from_arrays(adds={"train": triple}))
        assert all(
            np.array_equal(before[k], newer.filter_index().csr_arrays()[k]) for k in before
        )
        _assert_index_equals_rebuild(newer)


# ---------------------------------------------------------------------------- validation
class TestDeltaValidation:
    @pytest.fixture()
    def view(self):
        return MutableGraphView(_random_graph(new_rng(11)))

    def test_invalid_deltas_raise_before_any_state_change(self, view):
        graph = view.graph
        train = np.asarray(graph.train.array)
        E, R = graph.num_entities, graph.num_relations
        missing = np.array([[0, 0, 0]], dtype=np.int64)
        while graph.filter_index().contains(*missing[0]):
            missing[0, 2] += 1
        cases = [
            (dict(adds={"train": train[:1]}), "already present"),
            (dict(removes={"train": missing}), "not present"),
            (dict(adds={"train": [[0, R, 0]]}), "out of range"),
            (dict(adds={"train": [[E, 0, 0]]}), "out of range"),
            (dict(adds={"train": [[-1, 0, 0]]}), "non-negative"),
            (dict(adds={"train": [[1, 2, 3], [1, 2, 3]]}), "duplicate"),
            (dict(removes={"bogus": train[:1]}), "unknown split"),
            (dict(adds={"train": train[:1]}, removes={"train": train[:1]}), "overlap"),
        ]
        for kwargs, message in cases:
            with pytest.raises(DeltaValidationError, match=message):
                view.apply(GraphDelta.from_arrays(**kwargs))
            assert view.version == 0, f"failed delta mutated the view: {kwargs}"
        assert view.graph is graph

    def test_from_json_wire_format(self):
        delta = GraphDelta.from_json({"adds": {"train": [[1, 2, 3]]}, "removes": {}})
        assert delta.num_added == 1 and delta.num_removed == 0
        assert list(delta.touched_relations()) == [2]
        assert delta.describe() == {"added": 1, "removed": 0, "relations_touched": 1}
        for payload in (
            [1, 2, 3],
            {"bogus": {}},
            {"adds": [[1, 2, 3]]},
            {"adds": {"train": [[1, 2]]}},
            {"adds": {"train": "nope"}},
            {"adds": {"nope": [[1, 2, 3]]}},
        ):
            with pytest.raises(DeltaValidationError):
                GraphDelta.from_json(payload)
        assert GraphDelta.from_json({}).is_empty()


# ---------------------------------------------------------------------------- freezing
class TestSplitFreezing:
    def test_split_arrays_are_frozen_at_construction(self):
        graph = _random_graph(new_rng(17))
        for name in SPLIT_NAMES:
            array = getattr(graph, name).array
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0, 0] = 99

    def test_freeze_survives_pickle_and_version_rides_along(self):
        view = MutableGraphView(_random_graph(new_rng(19)))
        view.apply(GraphDelta.from_arrays())
        clone = pickle.loads(pickle.dumps(view.graph))
        assert clone.graph_version == 1
        for name in SPLIT_NAMES:
            assert not getattr(clone, name).array.flags.writeable

    def test_merged_index_buffers_are_frozen(self):
        view = MutableGraphView(_random_graph(new_rng(23)))
        delta = _random_delta(view.graph, new_rng(23), "mixed")
        merged = view.apply(delta).filter_index()
        for attr in (
            "_triples", "_triple_keys",
            "_tail_keys", "_tail_ptr", "_tail_vals",
            "_head_keys", "_head_ptr", "_head_vals",
        ):
            assert not getattr(merged, attr).flags.writeable, attr


# ---------------------------------------------------------------------------- engine swap
class TestEngineApplyDelta:
    def test_selective_invalidation_and_restamping(self, tiny_graph, trained_tiny_model):
        engine = LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)
        view = MutableGraphView(tiny_graph)
        engine.predict([LinkQuery(relation=0, head=1, k=3)])
        engine.predict([LinkQuery(relation=1, head=1, k=3)])
        assert engine.cache_info()["lru_entries"] == 2

        # A delta touching relation 0 only.
        missing = np.array([[0, 0, 0]], dtype=np.int64)
        while view.graph.filter_index().contains(*missing[0]):
            missing[0, 2] += 1
        new_graph = view.apply(GraphDelta.from_arrays(adds={"train": missing}))
        successor = engine.apply_delta(new_graph, GraphDelta.from_arrays(adds={"train": missing}))

        assert successor.graph_version == 1
        assert [key[2] for key in successor._lru] == [1]
        assert successor.stats is engine.stats  # cumulative counters shared
        assert successor.stats.deltas_applied == 1
        assert successor.stats.cache_entries_invalidated == 1

        # The surviving relation-1 entry is re-stamped to the new version on its hit.
        hits_before = successor.stats.lru_hits
        result = successor.predict([LinkQuery(relation=1, head=1, k=3)])[0]
        assert successor.stats.lru_hits == hits_before + 1
        assert result.graph_version == 1
        # The invalidated relation is rescored against the merged index.
        rescored = successor.predict([LinkQuery(relation=0, head=1, k=3)])[0]
        assert rescored.graph_version == 1
        # The old engine still serves the old snapshot untouched.
        assert engine.graph_version == 0
        assert engine.predict([LinkQuery(relation=0, head=1, k=3)])[0].graph_version == 0

    def test_rescoring_respects_the_merged_filter(self, tiny_graph, trained_tiny_model):
        """A triple added via delta must disappear from filtered top-k candidates."""
        engine = LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)
        view = MutableGraphView(tiny_graph)
        baseline = engine.top_k(relation=0, head=2, k=tiny_graph.num_entities)
        # Add (2, 0, t) for the top-ranked candidate tail t: it becomes a known triple
        # and must vanish from the filtered ranking.
        top_tail = int(baseline.entities[0])
        delta = GraphDelta.from_arrays(adds={"train": [[2, 0, top_tail]]})
        successor = engine.apply_delta(view.apply(delta), delta)
        filtered = successor.top_k(relation=0, head=2, k=tiny_graph.num_entities)
        assert top_tail not in set(int(e) for e in filtered.entities)
