"""Fault-injection tests for the HTTP serving stack, against a real localhost server.

Every scenario drives actual sockets: overload (shedding with ``Retry-After``, never a
hang), deadline expiry (504, cancelled before scoring), readiness degradation under
backlog, mid-flight artifact corruption with rollback (zero failed in-flight requests),
circuit breaking, and SIGTERM drain of a real ``python -m repro serve --http``
subprocess.  Timing margins are generous because CI may have a single core.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest

from repro.models import KGEModel
from repro.scoring import named_structure
from repro.serve import (
    BackgroundHttpServer,
    FrontendConfig,
    LinkPredictionEngine,
    ModelArtifactRegistry,
    ReloadConfig,
    ServingFrontend,
)
from repro.serve.frontend import EngineReloader
from repro.serve.http import parse_address
from repro.stream import MutableGraphView

REPO_ROOT = Path(__file__).resolve().parents[1]


# ---------------------------------------------------------------------------- helpers
class SlowEngine:
    """Engine wrapper that delays (or gates) scoring and records what it scored."""

    def __init__(self, inner, delay_s: float = 0.0, gate: threading.Event = None) -> None:
        self.inner = inner
        self.delay_s = delay_s
        self.gate = gate
        self.scored = []
        self._lock = threading.Lock()

    def validate_query(self, query) -> None:
        self.inner.validate_query(query)

    def predict(self, queries):
        with self._lock:
            self.scored.extend(queries)
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate was never released"
        if self.delay_s:
            time.sleep(self.delay_s)
        return self.inner.predict(queries)


def _request(address, method, path, body=None, timeout=15.0):
    """One HTTP request; returns (status, parsed JSON payload, headers dict)."""
    conn = http.client.HTTPConnection(address[0], address[1], timeout=timeout)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, body=payload, headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        raw = response.read()
        return response.status, json.loads(raw) if raw else {}, dict(response.getheaders())
    finally:
        conn.close()


def _predict(address, relation=0, head=None, tail=None, k=3, deadline_ms=None, timeout=15.0):
    body = {"relation": relation, "k": k}
    if head is not None:
        body["head"] = head
    if tail is not None:
        body["tail"] = tail
    if deadline_ms is not None:
        body["deadline_ms"] = deadline_ms
    return _request(address, "POST", "/v1/predict", body=body, timeout=timeout)


@contextmanager
def serving(engine, config=None, **kwargs):
    frontend = ServingFrontend(engine, model_name="m", version=1, config=config, **kwargs)
    with BackgroundHttpServer(frontend) as server:
        yield server.address, frontend


def _wait_until(condition, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if condition():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture()
def engine(tiny_graph, trained_tiny_model):
    return LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)


# ---------------------------------------------------------------------------- endpoints
class TestEndpoints:
    def test_predict_matches_engine(self, engine):
        expected = engine.top_k(relation=1, head=3, k=4)
        with serving(engine) as (address, _):
            status, payload, _ = _predict(address, relation=1, head=3, k=4)
        assert status == 200
        assert payload["model"] == {"name": "m", "version": 1}
        assert payload["direction"] == "tail"
        got = [(r["entity"], r["score"]) for r in payload["results"]]
        assert got == [(int(e), float(s)) for e, s in expected.pairs()]
        assert [r["label"] for r in payload["results"]] == list(expected.labels)

    def test_head_completion_and_keep_alive(self, engine):
        with serving(engine) as (address, _):
            conn = http.client.HTTPConnection(address[0], address[1], timeout=15.0)
            try:
                for _ in range(3):  # several requests over one keep-alive connection
                    conn.request("POST", "/v1/predict", body=json.dumps({"relation": 0, "tail": 5}))
                    response = conn.getresponse()
                    payload = json.loads(response.read())
                    assert response.status == 200
                    assert payload["direction"] == "head"
            finally:
                conn.close()

    def test_health_ready_metrics(self, engine):
        with serving(engine) as (address, _):
            assert _request(address, "GET", "/healthz")[0] == 200
            status, payload, _ = _request(address, "GET", "/readyz")
            assert (status, payload["ready"]) == (200, True)
            _predict(address, relation=0, head=1)
            status, metrics, _ = _request(address, "GET", "/metrics")
            assert status == 200
            assert metrics["model"] == {"name": "m", "version": 1}
            assert metrics["counters"]["completed"] == 1
            assert metrics["latency"]["count"] == 1
            assert metrics["service"]["queries"] == 1

    def test_malformed_requests(self, engine):
        with serving(engine) as (address, _):
            status, payload, _ = _request(address, "POST", "/v1/predict", body={"k": 3})
            assert status == 400 and "relation" in payload["error"]
            # both head and tail, neither, bad types, bad JSON, bad routes
            assert _predict(address, relation=0, head=1, tail=2)[0] == 400
            assert _request(address, "POST", "/v1/predict", body={"relation": 0})[0] == 400
            assert _request(address, "POST", "/v1/predict", body=[1, 2])[0] == 400
            assert _predict(address, relation=10_000, head=1)[0] == 400
            assert _predict(address, relation=0, head=10_000)[0] == 400
            assert _request(address, "GET", "/v1/predict")[0] == 405
            assert _request(address, "POST", "/healthz")[0] == 405
            assert _request(address, "GET", "/nowhere")[0] == 404
            conn = http.client.HTTPConnection(address[0], address[1], timeout=15.0)
            try:
                conn.request("POST", "/v1/predict", body=b"{not json")
                assert conn.getresponse().status == 400
            finally:
                conn.close()
            # the server survived all of it
            assert _request(address, "GET", "/healthz")[0] == 200

    def test_reload_endpoint_without_reloader(self, engine):
        with serving(engine) as (address, _):
            status, payload, _ = _request(address, "POST", "/v1/reload")
            assert status == 409
            assert "disabled" in payload["error"]


# ---------------------------------------------------------------------------- live graph deltas
def _fresh_triple(graph, relation):
    """Some ``[head, relation, tail]`` absent from every split of ``graph``."""
    index = graph.filter_index()
    for head in range(graph.num_entities):
        for tail in range(graph.num_entities):
            if not index.contains(head, relation, tail):
                return [head, relation, tail]
    raise AssertionError("graph is complete; no fresh triple exists")


class TestGraphDelta:
    """``POST /v1/graph/delta``: versioned swaps, selective invalidation, fault isolation."""

    def test_delta_swaps_version_and_invalidates_only_touched_relations(
        self, tiny_graph, trained_tiny_model
    ):
        engine = LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)
        view = MutableGraphView(tiny_graph)
        with serving(engine, graph_view=view) as (address, frontend):
            # Warm one LRU entry per relation; results carry the boot version.
            assert _predict(address, relation=0, head=1)[1]["graph_version"] == 0
            assert _predict(address, relation=1, head=1)[1]["graph_version"] == 0

            triple = _fresh_triple(view.graph, relation=0)
            status, payload, _ = _request(
                address, "POST", "/v1/graph/delta", body={"adds": {"train": [triple]}}
            )
            assert status == 200
            assert payload["ok"] is True
            assert payload["graph_version"] == 1
            assert payload["added"] == 1 and payload["removed"] == 0
            assert payload["relations_touched"] == 1

            # The swapped-in engine dropped only the touched relation's cache entry.
            live = frontend._service.engine
            assert live.graph_version == 1
            assert [key[2] for key in live._lru] == [1]
            assert live.stats.deltas_applied == 1
            assert live.stats.cache_entries_invalidated == 1

            # New results are stamped with the new version -- including the surviving
            # relation-1 entry, which is re-stamped on its next cache hit.
            assert _predict(address, relation=0, head=1)[1]["graph_version"] == 1
            assert _predict(address, relation=1, head=1)[1]["graph_version"] == 1

            status, metrics, _ = _request(address, "GET", "/metrics")
            assert status == 200
            assert metrics["graph"]["version"] == 1
            assert metrics["graph"]["attached"] is True
            assert metrics["graph"]["deltas_accepted"] == 1
            assert metrics["graph"]["deltas_rejected"] == 0
            assert metrics["engine"]["deltas_applied"] == 1

    def test_invalid_delta_rejected_engine_and_caches_intact(
        self, tiny_graph, trained_tiny_model
    ):
        engine = LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)
        view = MutableGraphView(tiny_graph)
        with serving(engine, graph_view=view) as (address, frontend):
            _predict(address, relation=0, head=1)
            _predict(address, relation=1, head=2)
            live = frontend._service.engine
            cached_before = live.cache_info()["lru_entries"]
            assert cached_before == 2

            # Out-of-vocab entity: rejected against the live snapshot, version echoed.
            status, payload, _ = _request(
                address, "POST", "/v1/graph/delta",
                body={"adds": {"train": [[10_000, 0, 0]]}},
            )
            assert status == 400 and "out of range" in payload["error"]
            assert payload["graph_version"] == 0
            # Remove of a triple that does not exist.
            status, payload, _ = _request(
                address, "POST", "/v1/graph/delta",
                body={"removes": {"train": [_fresh_triple(view.graph, relation=0)]}},
            )
            assert status == 400 and "not present" in payload["error"]
            # Malformed payloads and methods.
            assert _request(address, "POST", "/v1/graph/delta", body={"bogus": 1})[0] == 400
            conn = http.client.HTTPConnection(address[0], address[1], timeout=15.0)
            try:
                conn.request("POST", "/v1/graph/delta", body=b"{not json")
                assert conn.getresponse().status == 400
            finally:
                conn.close()
            assert _request(address, "GET", "/v1/graph/delta")[0] == 405

            # The engine is provably still the old one: same object, old version,
            # caches untouched, and the view never advanced.
            assert frontend._service.engine is live
            assert live.graph_version == 0
            assert view.version == 0
            assert live.cache_info()["lru_entries"] == cached_before
            assert live.stats.deltas_applied == 0

            status, metrics, _ = _request(address, "GET", "/metrics")
            assert metrics["graph"]["version"] == 0
            assert metrics["graph"]["deltas_accepted"] == 0
            assert metrics["graph"]["deltas_rejected"] == 4
            # Serving still answers at the old version.
            assert _predict(address, relation=0, head=1)[1]["graph_version"] == 0

    def test_delta_without_graph_view_is_409(self, engine):
        with serving(engine) as (address, _):
            status, payload, _ = _request(
                address, "POST", "/v1/graph/delta", body={"adds": {}}
            )
            assert status == 409
            assert "no graph" in payload["error"]


# ---------------------------------------------------------------------------- overload
class TestOverload:
    def test_overload_sheds_with_retry_after_and_never_hangs(self, engine):
        slow = SlowEngine(engine, delay_s=0.15)
        config = FrontendConfig(
            max_queue_depth=2, max_batch_size=1, default_deadline_s=20.0, max_deadline_s=30.0
        )
        outcomes = []
        lock = threading.Lock()

        def fire():
            result = _predict(address, relation=0, head=1, timeout=30.0)
            with lock:
                outcomes.append(result)

        with serving(slow, config=config) as (address, frontend):
            threads = [threading.Thread(target=fire) for _ in range(12)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=45.0)
            assert not any(thread.is_alive() for thread in threads), "a request hung"

            statuses = [status for status, _, _ in outcomes]
            assert len(statuses) == 12
            assert set(statuses) <= {200, 503}
            assert statuses.count(200) >= 1
            assert statuses.count(503) >= 1, "overload never shed"
            for status, payload, headers in outcomes:
                if status == 503:
                    assert "Retry-After" in headers
                    assert "full" in payload["error"]
            assert frontend.shed == statuses.count(503)
            assert frontend.completed == statuses.count(200)
        # after load passes, the server still answers
        assert frontend.accepted == frontend.completed

    def test_readyz_degrades_under_backlog_and_recovers(self, engine):
        gate = threading.Event()
        gated = SlowEngine(engine, gate=gate)
        config = FrontendConfig(
            max_queue_depth=8, high_water=2, max_batch_size=1,
            default_deadline_s=25.0, max_deadline_s=30.0,
        )
        statuses = []
        lock = threading.Lock()

        def fire():
            status, _, _ = _predict(address, relation=0, head=1, timeout=40.0)
            with lock:
                statuses.append(status)

        with serving(gated, config=config) as (address, frontend):
            threads = [threading.Thread(target=fire) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                # one request blocks in scoring, the rest pile up past high water
                _wait_until(lambda: frontend.queue_depth() >= 2, message="backlog to build")
                status, payload, _ = _request(address, "GET", "/readyz")
                assert status == 503
                assert payload["ready"] is False
                assert "high-water" in payload["reason"]
            finally:
                gate.set()
            for thread in threads:
                thread.join(timeout=45.0)
            assert statuses == [200, 200, 200, 200]
            status, payload, _ = _request(address, "GET", "/readyz")
            assert (status, payload["ready"]) == (200, True)


# ---------------------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_expired_deadline_returns_504_and_never_scores(self, engine):
        slow = SlowEngine(engine, delay_s=0.5)
        config = FrontendConfig(
            max_queue_depth=8, max_batch_size=1, default_deadline_s=20.0, max_deadline_s=30.0
        )
        first_result = {}

        def fire_first():
            first_result["outcome"] = _predict(address, relation=0, head=1, timeout=30.0)

        with serving(slow, config=config) as (address, frontend):
            thread = threading.Thread(target=fire_first)
            thread.start()
            # let the first request reach the scorer, then queue one with a tiny deadline
            _wait_until(lambda: len(slow.scored) >= 1, message="first request to reach scoring")
            status, payload, _ = _predict(address, relation=0, head=2, deadline_ms=100, timeout=30.0)
            assert status == 504
            assert "deadline" in payload["error"]
            thread.join(timeout=30.0)
            assert first_result["outcome"][0] == 200
            # the expired request was cancelled before it could occupy a batch slot
            _wait_until(
                lambda: frontend.cancelled_before_scoring >= 1,
                message="cancellation to be recorded",
            )
            assert all(query.anchor != 2 for query in slow.scored)
            assert frontend.deadline_timeouts == 1

    def test_trickle_request_flushes_on_time_not_on_size(self, engine):
        # max_batch_size far above the traffic: only the time-based flush can answer
        config = FrontendConfig(max_batch_size=64, flush_interval_s=0.01)
        with serving(engine, config=config) as (address, _):
            started = time.monotonic()
            status, _, _ = _predict(address, relation=0, head=1)
            assert status == 200
            assert time.monotonic() - started < 10.0


# ---------------------------------------------------------------------------- hot reload
def _fresh_model(graph, seed):
    return KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=16,
        scorers=named_structure("distmult"),
        seed=seed,
    )


def _corrupt_weights(registry, name, version):
    weights = registry.resolve(name, version).weights_path
    payload = weights.read_bytes()
    weights.write_bytes(payload[:-1] + bytes([payload[-1] ^ 0xFF]))


class TestHotReload:
    def test_rollback_then_circuit_open_then_swap(self, tiny_graph, trained_tiny_model, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", trained_tiny_model)
        frontend = ServingFrontend.from_registry(
            registry, "m", graph=tiny_graph,
            reload_config=ReloadConfig(
                poll_interval_s=0.0, backoff_initial_s=0.0, max_attempts=2, smoke_queries=2
            ),
        )
        assert frontend.version == 1

        stop = threading.Event()
        statuses = []

        def hammer():
            while not stop.is_set():
                status, _, _ = _predict(address, relation=0, head=1, timeout=20.0)
                statuses.append(status)
                time.sleep(0.01)

        with BackgroundHttpServer(frontend) as server:
            address = server.address
            client = threading.Thread(target=hammer)
            client.start()
            try:
                # v2 exists but its weights are corrupted mid-flight
                registry.save("m", _fresh_model(tiny_graph, seed=7))
                _corrupt_weights(registry, "m", 2)

                status, payload, _ = _request(address, "POST", "/v1/reload")
                assert (status, payload["outcome"]) == (200, "rolled-back")
                assert payload["active_version"] == 1
                assert "integrity" in payload["last_error"]

                # second failure exhausts max_attempts=2 and opens the circuit
                assert _request(address, "POST", "/v1/reload")[1]["outcome"] == "rolled-back"
                payload = _request(address, "POST", "/v1/reload")[1]
                assert payload["outcome"] == "circuit-open"
                assert payload["broken_versions"] == [2]

                # a good v3 supersedes the broken v2 and swaps in
                registry.save("m", _fresh_model(tiny_graph, seed=8))
                payload = _request(address, "POST", "/v1/reload")[1]
                assert payload["outcome"] == "swapped"
                assert payload["active_version"] == 3

                status, predict_payload, _ = _predict(address, relation=0, head=1)
                assert status == 200
                assert predict_payload["model"]["version"] == 3
                metrics = _request(address, "GET", "/metrics")[1]
                assert metrics["reload"]["swaps"] == 1
                assert metrics["reload"]["rollbacks"] == 2
            finally:
                stop.set()
                client.join(timeout=30.0)
        # zero failed in-flight requests across two rollbacks and a swap
        assert statuses and set(statuses) == {200}

    def test_background_poll_swaps_without_client_action(self, tiny_graph, trained_tiny_model, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", trained_tiny_model)
        frontend = ServingFrontend.from_registry(
            registry, "m", graph=tiny_graph,
            reload_config=ReloadConfig(poll_interval_s=0.05, smoke_queries=2),
        )
        with BackgroundHttpServer(frontend) as server:
            address = server.address
            registry.save("m", _fresh_model(tiny_graph, seed=9))
            _wait_until(lambda: frontend.version == 2, message="background reload to swap")
            assert _predict(address, relation=0, head=1)[1]["model"]["version"] == 2

    def test_pinned_version_never_reloads(self, tiny_graph, trained_tiny_model, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", trained_tiny_model)
        frontend = ServingFrontend.from_registry(registry, "m", version=1, graph=tiny_graph)
        assert frontend.reloader is None


class TestEngineReloader:
    """Unit tests of the backoff / circuit-breaker state machine with a fake clock."""

    @pytest.fixture()
    def setup(self, tiny_graph, trained_tiny_model, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", trained_tiny_model)
        clock = {"now": 0.0}
        swapped = []
        reloader = EngineReloader(
            registry,
            "m",
            build_engine=lambda model, manifest, version: LinkPredictionEngine(model),
            on_swap=lambda engine, version: swapped.append(version),
            active_version=1,
            config=ReloadConfig(
                poll_interval_s=0.0, smoke_queries=2, max_attempts=3,
                backoff_initial_s=1.0, backoff_multiplier=2.0, backoff_max_s=10.0,
            ),
            clock=lambda: clock["now"],
        )
        return registry, reloader, clock, swapped

    def test_up_to_date(self, setup):
        _, reloader, _, swapped = setup
        assert reloader.check_once() == "up-to-date"
        assert swapped == []

    def test_backoff_schedule_and_circuit_breaker(self, setup, tiny_graph):
        registry, reloader, clock, swapped = setup
        registry.save("m", _fresh_model(tiny_graph, seed=3))
        _corrupt_weights(registry, "m", 2)

        assert reloader.check_once() == "rolled-back"     # attempt 1, retry at t=1
        clock["now"] = 0.5
        assert reloader.check_once() == "backing-off"
        clock["now"] = 1.5
        assert reloader.check_once() == "rolled-back"     # attempt 2, retry at t=3.5
        clock["now"] = 3.0
        assert reloader.check_once() == "backing-off"
        clock["now"] = 4.0
        assert reloader.check_once() == "rolled-back"     # attempt 3 of 3: circuit opens
        clock["now"] = 100.0
        assert reloader.check_once() == "circuit-open"
        assert reloader.rollbacks == 3
        assert swapped == []

        # a newer good version resets the process
        registry.save("m", _fresh_model(tiny_graph, seed=4))
        assert reloader.check_once() == "swapped"
        assert swapped == [3]
        assert reloader.active_version == 3
        assert reloader.previous_version == 1

    def test_nan_model_fails_smoke_validation(self, setup, tiny_graph):
        registry, reloader, _, swapped = setup
        broken = _fresh_model(tiny_graph, seed=5)
        # poison every parameter with NaN: the checksum still passes, only smoke fails
        state = {name: np.full_like(array, np.nan) for name, array in broken.state_dict().items()}
        broken.load_state_dict(state)
        registry.save("m", broken)
        assert reloader.check_once() == "rolled-back"
        assert "smoke" in reloader.last_error or "zero candidates" in reloader.last_error
        assert swapped == []


# ---------------------------------------------------------------------------- drain
class TestSigtermDrain:
    def test_sigterm_drains_and_answers_accepted_requests(self, tiny_graph, trained_tiny_model, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", trained_tiny_model)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--http", "--port", "0",
                "--registry", str(tmp_path / "registry"), "--model", "m",
                "--no-reload", "--max-queue-depth", "64",
            ],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, bufsize=1,
        )
        lines = []

        def read_output():
            for line in process.stdout:
                lines.append(line.rstrip("\n"))

        reader = threading.Thread(target=read_output, daemon=True)
        reader.start()
        try:
            _wait_until(
                lambda: any(line.startswith("serving on http://") for line in lines),
                timeout=60.0, message="server banner",
            )
            address = parse_address(lines)

            stop = threading.Event()
            statuses = []
            lock = threading.Lock()

            def client():
                while not stop.is_set():
                    try:
                        status, _, _ = _predict(address, relation=0, head=1, timeout=15.0)
                    except (OSError, http.client.HTTPException):
                        break  # listener closed mid-drain: acceptable for *unsent* work
                    with lock:
                        statuses.append(status)

            clients = [threading.Thread(target=client) for _ in range(4)]
            for thread in clients:
                thread.start()
            _wait_until(lambda: len(statuses) >= 8, timeout=30.0, message="steady traffic")

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30.0) == 0, "\n".join(lines)
            stop.set()
            for thread in clients:
                thread.join(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
        reader.join(timeout=10.0)

        drained = [line for line in lines if line.startswith("drained:")]
        assert drained, "\n".join(lines)
        completed = int(drained[0].split("drained:")[1].split("completed")[0].strip())
        ok = [status for status in statuses if status == 200]
        # every request a client saw answered was a real completion, none were dropped
        assert set(statuses) <= {200, 503}
        assert len(ok) >= 8
        assert len(ok) <= completed
