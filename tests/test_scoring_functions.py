"""Tests for bilinear block scoring, classic structures, translational baselines and
expressiveness analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor
from repro.scoring import (
    CLASSIC_STRUCTURES,
    BlockScoringFunction,
    BlockStructure,
    RotatEScorer,
    TransEScorer,
    analogy_structure,
    analyze_structure,
    complex_structure,
    distmult_structure,
    named_structure,
    render_relation_aware,
    render_structure,
    simple_structure,
)
from repro.scoring.expressiveness import expressiveness_table
from repro.scoring.render import render_matrix


def _embeddings(rng, count, dim):
    return Tensor(rng.normal(size=(count, dim)))


class TestBlockScoringFunction:
    @pytest.mark.parametrize("name", list(CLASSIC_STRUCTURES))
    def test_score_consistent_with_score_all(self, rng, name):
        scorer = BlockScoringFunction(named_structure(name))
        entities = _embeddings(rng, 12, 8)
        heads = Tensor(entities.data[[0, 1, 2]])
        tails_idx = [5, 6, 7]
        tails = Tensor(entities.data[tails_idx])
        relations = _embeddings(rng, 3, 8)
        direct = scorer.score(heads, relations, tails).data
        via_tails = scorer.score_all_tails(heads, relations, entities).data[np.arange(3), tails_idx]
        via_heads = scorer.score_all_heads(tails, relations, entities).data[np.arange(3), [0, 1, 2]]
        np.testing.assert_allclose(direct, via_tails, atol=1e-10)
        np.testing.assert_allclose(direct, via_heads, atol=1e-10)

    def test_distmult_is_symmetric_in_head_and_tail(self, rng):
        scorer = BlockScoringFunction(distmult_structure())
        head = _embeddings(rng, 5, 8)
        relation = _embeddings(rng, 5, 8)
        tail = _embeddings(rng, 5, 8)
        forward = scorer.score(head, relation, tail).data
        backward = scorer.score(tail, relation, head).data
        np.testing.assert_allclose(forward, backward, atol=1e-10)

    def test_complex_is_not_symmetric(self, rng):
        scorer = BlockScoringFunction(complex_structure())
        head = _embeddings(rng, 5, 8)
        relation = _embeddings(rng, 5, 8)
        tail = _embeddings(rng, 5, 8)
        assert not np.allclose(scorer.score(head, relation, tail).data, scorer.score(tail, relation, head).data)

    def test_dimension_must_divide(self, rng):
        scorer = BlockScoringFunction(distmult_structure())
        with pytest.raises(ValueError):
            scorer.score(_embeddings(rng, 2, 6), _embeddings(rng, 2, 6), _embeddings(rng, 2, 6))

    def test_zero_structure_scores_zero(self, rng):
        scorer = BlockScoringFunction(BlockStructure.zeros(4))
        scores = scorer.score(_embeddings(rng, 3, 8), _embeddings(rng, 3, 8), _embeddings(rng, 3, 8))
        np.testing.assert_allclose(scores.data, 0.0)

    def test_gradients_flow_to_embeddings(self, rng):
        scorer = BlockScoringFunction(complex_structure())
        head = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        relation = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        tail = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        scorer.score(head, relation, tail).sum().backward()
        assert head.grad is not None and relation.grad is not None and tail.grad is not None

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_score_is_linear_in_relation(self, seed):
        """Bilinear structures are linear in the relation embedding: f(h, 2r, t) = 2 f(h, r, t)."""
        rng = np.random.default_rng(seed)
        scorer = BlockScoringFunction(simple_structure())
        head = Tensor(rng.normal(size=(2, 8)))
        relation = Tensor(rng.normal(size=(2, 8)))
        tail = Tensor(rng.normal(size=(2, 8)))
        single = scorer.score(head, relation, tail).data
        doubled = scorer.score(head, relation * 2.0, tail).data
        np.testing.assert_allclose(doubled, 2.0 * single, atol=1e-10)


class TestTranslationalScorers:
    @pytest.mark.parametrize("scorer", [TransEScorer(norm=1), TransEScorer(norm=2), RotatEScorer()])
    def test_consistency_with_score_all(self, rng, scorer):
        entities = _embeddings(rng, 10, 8)
        heads = Tensor(entities.data[[1, 2]])
        tails_idx = [3, 4]
        tails = Tensor(entities.data[tails_idx])
        relations = _embeddings(rng, 2, 8)
        direct = scorer.score(heads, relations, tails).data
        via_tails = scorer.score_all_tails(heads, relations, entities).data[np.arange(2), tails_idx]
        via_heads = scorer.score_all_heads(tails, relations, entities).data[np.arange(2), [1, 2]]
        np.testing.assert_allclose(direct, via_tails, atol=1e-8)
        np.testing.assert_allclose(direct, via_heads, atol=1e-8)

    def test_transe_perfect_translation_scores_highest(self):
        head = Tensor([[1.0, 2.0, 0.0, 1.0]])
        relation = Tensor([[0.5, -1.0, 1.0, 0.0]])
        perfect_tail = Tensor([[1.5, 1.0, 1.0, 1.0]])
        other_tail = Tensor([[0.0, 0.0, 0.0, 0.0]])
        scorer = TransEScorer()
        assert scorer.score(head, relation, perfect_tail).item() == pytest.approx(0.0)
        assert scorer.score(head, relation, other_tail).item() < 0.0

    def test_transe_invalid_norm(self):
        with pytest.raises(ValueError):
            TransEScorer(norm=3)

    def test_rotate_requires_even_dimension(self, rng):
        with pytest.raises(ValueError):
            RotatEScorer().score(_embeddings(rng, 1, 5), _embeddings(rng, 1, 5), _embeddings(rng, 1, 5))

    def test_rotate_preserves_norm_equivalence(self, rng):
        """A zero-phase relation makes RotatE score equal the negative distance between h and t."""
        head = _embeddings(rng, 3, 8)
        tail = _embeddings(rng, 3, 8)
        zero_phase = Tensor(np.zeros((3, 8)))
        scores = RotatEScorer().score(head, zero_phase, tail).data
        half = 4
        diff_re = head.data[:, :half] - tail.data[:, :half]
        diff_im = head.data[:, half:] - tail.data[:, half:]
        expected = -np.sqrt(diff_re**2 + diff_im**2 + 1e-12).sum(axis=1)
        np.testing.assert_allclose(scores, expected, atol=1e-8)


class TestExpressiveness:
    def test_table1_shapes(self):
        """DistMult covers only symmetry; ComplEx / SimplE / Analogy are fully expressive."""
        reports = dict(expressiveness_table(CLASSIC_STRUCTURES))
        assert reports["distmult"].handles_symmetric
        assert not reports["distmult"].handles_anti_symmetric
        assert not reports["distmult"].fully_expressive
        for name in ("complex", "simple", "analogy"):
            assert reports[name].fully_expressive, name

    def test_zero_structure_handles_nothing(self):
        report = analyze_structure(BlockStructure.zeros(4))
        assert not any(
            [report.handles_symmetric, report.handles_anti_symmetric,
             report.handles_general_asymmetric, report.handles_inversion]
        )

    def test_skew_structure_is_antisymmetric_only(self):
        structure = BlockStructure([[0, 1], [-1, 0]])
        report = analyze_structure(structure)
        assert report.handles_anti_symmetric
        assert report.handles_symmetric is False

    def test_as_row_contains_all_columns(self):
        row = analyze_structure(distmult_structure()).as_row()
        assert set(row) == {"symmetric", "anti_symmetric", "general_asymmetric", "inversion", "fully_expressive"}


class TestRendering:
    def test_render_structure_lists_items(self):
        text = render_structure(distmult_structure())
        assert text.startswith("f(h,r,t) =")
        assert "<h1,r1,t1>" in text and "<h4,r4,t4>" in text

    def test_render_zero_structure(self):
        assert render_structure(BlockStructure.zeros(2)) == "f(h,r,t) = 0"

    def test_render_matrix_marks_empty_cells(self):
        text = render_matrix(BlockStructure([[1, 0], [0, -2]]))
        assert "+r1" in text and "-r2" in text and "." in text

    def test_render_relation_aware_mentions_groups_and_relations(self):
        text = render_relation_aware(
            [distmult_structure(), complex_structure()],
            group_relations={0: ["similar_to"], 1: ["hypernym"]},
        )
        assert "group 1" in text and "group 2" in text
        assert "similar_to" in text and "hypernym" in text

    def test_named_structure_unknown(self):
        with pytest.raises(KeyError):
            named_structure("unknown_sf")

    def test_analogy_structure_uses_all_blocks(self):
        assert analogy_structure().uses_all_relation_blocks()
