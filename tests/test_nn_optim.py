"""Tests for the optimisers and loss modules."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import SGD, Adagrad, Adam, BCEWithLogitsLoss, MarginRankingLoss, MulticlassLogLoss
from repro.nn.module import Parameter


def _minimise_quadratic(optimizer_factory, steps=200):
    """Minimise ||x - target||^2 and return the final parameter value."""
    target = np.array([1.0, -2.0, 3.0])
    parameter = Parameter(np.zeros(3))
    optimizer = optimizer_factory([parameter])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((parameter - Tensor(target)) ** 2).sum()
        loss.backward()
        optimizer.step()
    return parameter.data, target


class TestConvergence:
    def test_sgd_converges(self):
        value, target = _minimise_quadratic(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        value, target = _minimise_quadratic(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adagrad_converges(self):
        value, target = _minimise_quadratic(lambda p: Adagrad(p, lr=1.0), steps=400)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_adam_converges(self):
        value, target = _minimise_quadratic(lambda p: Adam(p, lr=0.1), steps=400)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        no_decay, target = _minimise_quadratic(lambda p: SGD(p, lr=0.1, weight_decay=0.0))
        with_decay, _ = _minimise_quadratic(lambda p: SGD(p, lr=0.1, weight_decay=1.0))
        assert np.linalg.norm(with_decay) < np.linalg.norm(no_decay)


class TestValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_decay_lr(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        optimizer.decay_lr(0.5)
        assert optimizer.lr == pytest.approx(0.5)
        with pytest.raises(ValueError):
            optimizer.decay_lr(0.0)

    def test_step_with_no_gradient_is_noop_for_sgd(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.5)
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [1.0])


class TestLossModules:
    def test_multiclass_log_loss(self, rng):
        logits = Tensor(rng.normal(size=(4, 6)))
        loss = MulticlassLogLoss()(logits, np.array([0, 1, 2, 3]))
        assert loss.item() > 0

    def test_bce_module(self, rng):
        logits = Tensor(rng.normal(size=(5,)))
        loss = BCEWithLogitsLoss()(logits, np.ones(5))
        assert loss.item() > 0

    def test_margin_module_validation(self):
        with pytest.raises(ValueError):
            MarginRankingLoss(margin=-1.0)

    def test_margin_module_value(self):
        loss = MarginRankingLoss(margin=2.0)(Tensor([3.0]), Tensor([2.0]))
        assert loss.item() == pytest.approx(1.0)
