"""Unit/integration test package; the marker lets pytest import test modules as
``tests.<name>`` so basenames may repeat across ``tests/`` and ``benchmarks/``."""
