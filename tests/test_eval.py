"""Tests for ranking evaluation, pattern-level metrics, triplet classification and
correlation utilities."""

import numpy as np
import pytest

from repro.eval import (
    CorrelationStudy,
    PatternLevelEvaluator,
    RankingEvaluator,
    RankingMetrics,
    TripletClassifier,
    pearson_correlation,
    spearman_correlation,
)
from repro.kg import KnowledgeGraph, RelationPattern, TripleSet
from repro.models import KGEModel
from repro.scoring import named_structure


class TestRankingMetrics:
    def test_from_ranks_values(self):
        metrics = RankingMetrics.from_ranks(np.array([1, 2, 10, 100]))
        assert metrics.hit1 == pytest.approx(0.25)
        assert metrics.hit10 == pytest.approx(0.75)
        assert metrics.mrr == pytest.approx((1 + 0.5 + 0.1 + 0.01) / 4)
        assert metrics.count == 4

    def test_empty_ranks(self):
        metrics = RankingMetrics.from_ranks(np.array([]))
        assert metrics.count == 0 and metrics.mrr == 0.0

    def test_as_row_uses_percentages(self):
        row = RankingMetrics.from_ranks(np.array([1, 1])).as_row()
        assert row["Hit@1"] == 100.0


class _OracleGraph:
    """A tiny graph where the perfect model is known analytically."""

    @staticmethod
    def build():
        # Relation 0 maps entity i to entity i+1 (mod 6).
        triples = [(i, 0, (i + 1) % 6) for i in range(6)]
        train = TripleSet(triples[:4])
        valid = TripleSet(triples[4:5])
        test = TripleSet(triples[5:])
        return KnowledgeGraph("oracle", 6, 1, train, valid, test)


class TestRankingEvaluator:
    def test_ranks_are_within_valid_bounds(self):
        graph = _OracleGraph.build()
        model = KGEModel(6, 1, dim=4, scorers=named_structure("distmult"), seed=0)
        evaluator = RankingEvaluator(graph, filtered=True)
        ranks = evaluator.ranks(model, graph.test)
        assert ranks.min() >= 1
        assert ranks.max() <= graph.num_entities

    def test_filtered_ranks_never_worse_than_raw(self, tiny_graph, trained_tiny_model):
        filtered = RankingEvaluator(tiny_graph, filtered=True).evaluate(trained_tiny_model, split="test")
        raw = RankingEvaluator(tiny_graph, filtered=False).evaluate(trained_tiny_model, split="test")
        assert filtered.mrr >= raw.mrr - 1e-9

    def test_sample_size_limits_count(self, tiny_graph, trained_tiny_model):
        metrics = RankingEvaluator(tiny_graph).evaluate(trained_tiny_model, split="test", sample_size=5)
        assert metrics.count == 10  # 5 triples, head and tail direction each

    def test_per_relation_covers_test_relations(self, tiny_graph, trained_tiny_model):
        per_relation = RankingEvaluator(tiny_graph).per_relation(trained_tiny_model, split="test")
        assert set(per_relation) == set(int(r) for r in tiny_graph.test.relation_ids())

    def test_unknown_split_raises(self, tiny_graph, trained_tiny_model):
        with pytest.raises(ValueError):
            RankingEvaluator(tiny_graph).evaluate(trained_tiny_model, split="nope")

    def test_validation_mrr_helper(self, tiny_graph, trained_tiny_model):
        value = RankingEvaluator(tiny_graph).validation_mrr(trained_tiny_model)
        assert 0.0 < value <= 1.0


class TestPatternLevelEvaluator:
    def test_hit1_by_pattern_keys(self, tiny_graph, trained_tiny_model):
        evaluator = PatternLevelEvaluator(tiny_graph)
        by_pattern = evaluator.hit1_by_pattern(trained_tiny_model, split="test")
        assert set(by_pattern) <= {p.value for p in RelationPattern}
        assert all(0.0 <= v <= 100.0 for v in by_pattern.values())

    def test_explicit_pattern_mapping_respected(self, tiny_graph, trained_tiny_model):
        mapping = {r: RelationPattern.SYMMETRIC for r in range(tiny_graph.num_relations)}
        evaluator = PatternLevelEvaluator(tiny_graph, pattern_of_relation=mapping)
        assert evaluator.relations_of(RelationPattern.SYMMETRIC) == list(range(tiny_graph.num_relations))
        assert evaluator.relations_of(RelationPattern.INVERSE) == []

    def test_evaluate_all_returns_every_pattern(self, tiny_graph, trained_tiny_model):
        results = PatternLevelEvaluator(tiny_graph).evaluate_all(trained_tiny_model, split="test")
        assert set(results) == set(RelationPattern)


class TestTripletClassifier:
    def test_accuracy_between_zero_and_one(self, tiny_graph, trained_tiny_model):
        classifier = TripletClassifier(tiny_graph, seed=0)
        result = classifier.evaluate(trained_tiny_model)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.count == 2 * len(tiny_graph.test)
        assert set(result.thresholds) == set(range(tiny_graph.num_relations))

    def test_trained_model_beats_chance(self, tiny_graph, trained_tiny_model):
        result = TripletClassifier(tiny_graph, seed=0).evaluate(trained_tiny_model)
        assert result.accuracy > 0.5

    def test_best_threshold_separates_perfectly_separable_scores(self):
        scores = np.array([-2.0, -1.0, 1.0, 2.0])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        threshold = TripletClassifier._best_threshold(scores, labels)
        assert -1.0 < threshold < 1.0

    def test_labelled_split_is_balanced(self, tiny_graph):
        classifier = TripletClassifier(tiny_graph, seed=0)
        triples, labels = classifier.build_labelled_split("valid")
        assert len(triples) == 2 * len(tiny_graph.valid)
        assert labels.sum() == len(tiny_graph.valid)


class TestCorrelation:
    def test_spearman_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_pearson_linear(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_degenerate_inputs_return_zero(self):
        assert spearman_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        assert pearson_correlation([1], [2]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman_correlation([1, 2], [1])

    def test_correlation_study_accumulates(self):
        study = CorrelationStudy(label="test")
        for x, y in [(0.1, 0.2), (0.2, 0.3), (0.3, 0.5)]:
            study.add(x, y)
        summary = study.summary()
        assert summary["count"] == 3
        assert summary["spearman"] == pytest.approx(1.0)
