"""Tests for the KGE model, trainer and regularisers."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.models import KGEModel, Trainer, TrainerConfig, l2_regularization, n3_regularization
from repro.scoring import TransEScorer, named_structure


class TestKGEModel:
    def _model(self, graph, **kwargs):
        defaults = dict(num_entities=graph.num_entities, num_relations=graph.num_relations,
                        dim=16, scorers=named_structure("distmult"), seed=0)
        defaults.update(kwargs)
        return KGEModel(**defaults)

    def test_score_shapes(self, tiny_graph):
        model = self._model(tiny_graph)
        batch = tiny_graph.train.array[:7]
        assert model.score_triples(batch).shape == (7,)
        assert model.score_all_tails(batch).shape == (7, tiny_graph.num_entities)
        assert model.score_all_heads(batch).shape == (7, tiny_graph.num_entities)

    def test_score_all_consistent_with_score(self, tiny_graph):
        model = self._model(tiny_graph)
        batch = tiny_graph.train.array[:9]
        direct = model.score_triples(batch).data
        tails = model.score_all_tails(batch).data[np.arange(9), batch[:, 2]]
        heads = model.score_all_heads(batch).data[np.arange(9), batch[:, 0]]
        np.testing.assert_allclose(direct, tails, atol=1e-10)
        np.testing.assert_allclose(direct, heads, atol=1e-10)

    def test_relation_aware_dispatch_matches_manual(self, tiny_graph, rng):
        """With two groups, each triple must be scored by the structure of its group."""
        structures = [named_structure("distmult"), named_structure("complex")]
        assignment = rng.integers(0, 2, size=tiny_graph.num_relations)
        model = self._model(tiny_graph, scorers=structures, assignment=assignment)
        batch = tiny_graph.train.array[:20]
        scores = model.score_triples(batch).data
        for group in (0, 1):
            single = self._model(tiny_graph, scorers=structures[group])
            single.entities.weight.data = model.entities.weight.data.copy()
            single.relations.weight.data = model.relations.weight.data.copy()
            rows = np.where(assignment[batch[:, 1]] == group)[0]
            if rows.size:
                np.testing.assert_allclose(scores[rows], single.score_triples(batch[rows]).data, atol=1e-10)

    def test_relation_aware_score_all_consistency(self, tiny_graph, rng):
        structures = [named_structure("distmult"), named_structure("simple")]
        assignment = rng.integers(0, 2, size=tiny_graph.num_relations)
        model = self._model(tiny_graph, scorers=structures, assignment=assignment)
        batch = tiny_graph.train.array[:15]
        direct = model.score_triples(batch).data
        tails = model.score_all_tails(batch).data[np.arange(15), batch[:, 2]]
        np.testing.assert_allclose(direct, tails, atol=1e-10)

    def test_assignment_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            self._model(tiny_graph, assignment=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            self._model(
                tiny_graph,
                scorers=[named_structure("distmult")],
                assignment=np.full(tiny_graph.num_relations, 2, dtype=np.int64),
            )

    def test_set_scorers_keeps_embeddings(self, tiny_graph):
        model = self._model(tiny_graph)
        before = model.entities.weight.data.copy()
        model.set_scorers([named_structure("complex")])
        np.testing.assert_allclose(model.entities.weight.data, before)
        assert model.num_groups == 1

    def test_set_scorers_requires_assignment_on_group_change(self, tiny_graph):
        model = self._model(tiny_graph)
        with pytest.raises(ValueError):
            model.set_scorers([named_structure("distmult"), named_structure("complex")])

    def test_accepts_translational_scorer(self, tiny_graph):
        model = self._model(tiny_graph, scorers=TransEScorer())
        batch = tiny_graph.train.array[:4]
        assert model.score_triples(batch).shape == (4,)

    def test_multiclass_loss_positive_and_differentiable(self, tiny_graph):
        model = self._model(tiny_graph)
        loss = model.multiclass_loss(tiny_graph.train.array[:16])
        assert loss.item() > 0
        loss.backward()
        assert model.entities.weight.grad is not None
        assert model.relations.weight.grad is not None

    def test_invalid_scorer_type(self, tiny_graph):
        with pytest.raises(TypeError):
            self._model(tiny_graph, scorers=42)


class TestRegularizers:
    def test_l2_value(self):
        value = l2_regularization([Tensor([[3.0, 4.0]])], weight=0.1)
        assert value.item() == pytest.approx(2.5)

    def test_n3_value(self):
        value = n3_regularization([Tensor([[2.0, -2.0]])], weight=1.0)
        assert value.item() == pytest.approx(16.0)

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            l2_regularization([], 0.1)
        with pytest.raises(ValueError):
            n3_regularization([], 0.1)


class TestTrainer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            TrainerConfig(lr_decay=0.0)

    def test_training_reduces_loss_and_tracks_history(self, tiny_graph):
        model = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=16,
                         scorers=named_structure("distmult"), seed=0)
        config = TrainerConfig(epochs=10, batch_size=64, learning_rate=0.5, valid_every=5, patience=3, seed=0)
        result = Trainer(config).fit(model, tiny_graph)
        assert len(result.loss_history) == result.epochs_run
        assert result.loss_history[-1] < result.loss_history[0]
        assert result.best_valid_mrr > 0
        assert result.best_state is not None

    def test_training_improves_over_untrained(self, tiny_graph, trained_tiny_model):
        from repro.eval import RankingEvaluator

        untrained = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=16,
                             scorers=named_structure("distmult"), seed=3)
        evaluator = RankingEvaluator(tiny_graph)
        trained_mrr = evaluator.evaluate(trained_tiny_model, split="test").mrr
        untrained_mrr = evaluator.evaluate(untrained, split="test").mrr
        assert trained_mrr > untrained_mrr

    def test_lr_decay_and_sgd_optimizer(self, tiny_graph):
        model = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=8,
                         scorers=named_structure("distmult"), seed=0)
        config = TrainerConfig(epochs=3, batch_size=64, learning_rate=0.1, optimizer="sgd",
                               lr_decay=0.9, valid_every=2, seed=0)
        result = Trainer(config).fit(model, tiny_graph)
        assert result.epochs_run == 3

    def test_best_state_is_an_independent_snapshot(self, tiny_graph):
        """Training after the best epoch must not mutate the stored best weights."""
        model = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=16,
                         scorers=named_structure("distmult"), seed=0)
        config = TrainerConfig(epochs=8, batch_size=64, learning_rate=0.5, valid_every=2, patience=5, seed=0)
        result = Trainer(config).fit(model, tiny_graph)
        assert result.best_state is not None
        live = dict(model.named_parameters())
        for name, stored in result.best_state.items():
            assert not np.shares_memory(stored, live[name].data)
        # Mutating the live model must leave the snapshot untouched.
        snapshot = {name: value.copy() for name, value in result.best_state.items()}
        for parameter in model.parameters():
            parameter.data += 123.0
        for name, value in result.best_state.items():
            np.testing.assert_array_equal(value, snapshot[name])

    def test_restored_model_reproduces_best_valid_mrr(self, tiny_graph):
        from repro.eval import RankingEvaluator

        model = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=16,
                         scorers=named_structure("distmult"), seed=0)
        config = TrainerConfig(epochs=12, batch_size=64, learning_rate=0.5, valid_every=3, patience=4, seed=0)
        result = Trainer(config).fit(model, tiny_graph)
        # fit restores the best snapshot into the model; with the full validation split
        # the evaluation is deterministic, so the MRR must match exactly.
        evaluator = RankingEvaluator(tiny_graph)
        restored_mrr = evaluator.evaluate(model, split="valid").mrr
        assert restored_mrr == pytest.approx(result.best_valid_mrr, abs=1e-12)

        # Loading the snapshot into a fresh model reproduces the same metric.
        fresh = KGEModel(tiny_graph.num_entities, tiny_graph.num_relations, dim=16,
                         scorers=named_structure("distmult"), seed=99)
        fresh.load_state_dict(result.best_state)
        assert evaluator.evaluate(fresh, split="valid").mrr == pytest.approx(result.best_valid_mrr, abs=1e-12)
