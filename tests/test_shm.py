"""Tests of the shared-memory transport (:mod:`repro.runtime.shm`) and the warm
pool (:mod:`repro.runtime.pool`): publish/attach round-trip fidelity, refcounted
lifecycle, owner ``atexit`` cleanup, graph payload resolution in real workers, and
the SIGKILLed-worker fault injection proving a hard-killed attacher leaks no
``/dev/shm`` segments and loses no results."""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.runtime import shm
from repro.runtime.pool import INSTALL_LRU, WarmPool, WarmPoolError, get_warm_pool

pytestmark = pytest.mark.shm

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _sample_arrays() -> dict:
    """A dtype/shape-diverse bundle: every array family the runtime actually ships."""
    rng = np.random.default_rng(7)
    return {
        "floats64": rng.standard_normal((17, 5)),
        "floats32": rng.standard_normal((3, 4, 2)).astype(np.float32),
        "ints64": rng.integers(-1000, 1000, size=(64, 3)),
        "ints32": rng.integers(0, 7, size=11).astype(np.int32),
        "empty": np.zeros((0, 3), dtype=np.int64),
        "scalarish": np.array([42.5]),
    }


def _fingerprint(arrays: dict) -> dict:
    return {
        key: (str(a.dtype), tuple(a.shape), hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest())
        for key, a in arrays.items()
    }


def _filter_fingerprint(index, sample: np.ndarray) -> str:
    """Digest of the flattened tail-filter exclusions of ``sample`` under ``index``."""
    rows, cols = index.flat_filter_indices(sample, "tail")
    flat = np.concatenate([np.asarray(rows, dtype=np.int64).ravel(), np.asarray(cols, dtype=np.int64).ravel()])
    return hashlib.sha256(flat.tobytes()).hexdigest()


# Module-level worker functions (must be picklable by qualified name).
def _bundle_fingerprint(shared, payload):
    """Attach the shared bundle and fingerprint every view (round-trip fidelity)."""
    return _fingerprint(shm.attach_arrays(shared["handle"]))


def _attach_or_die(shared, payload):
    """Fault injection: the first worker to see the ``die`` payload SIGKILLs itself.

    The O_EXCL marker file makes the kill fire exactly once (the orchestrator's
    injected-kill pattern): after the chunk is re-dispatched to the respawned
    worker, the marker already exists and the task completes normally.
    """
    if payload["die"]:
        try:
            fd = os.open(shared["marker"], os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    views = shm.attach_arrays(shared["handle"])
    return float(np.asarray(views["floats64"], dtype=np.float64).sum()) + float(payload["index"])


def _graph_reconstruct_probe(shared, payload):
    """Resolve the graph payload through the *shm reconstruction* path.

    A fork worker inherits the publisher's ``_GRAPH_BY_TOKEN`` registry and would
    resolve to the inherited original object; dropping the memo entries first forces
    the code path a ``spawn`` worker (or a cross-process attacher) takes: attach the
    segments and rebuild the graph plus its CSR filter index from views.
    """
    graph_payload = shared["graph_payload"]
    shm._GRAPH_BY_TOKEN.pop(graph_payload.token, None)
    shm._RESOLVED_GRAPHS.pop(graph_payload.token, None)
    graph = graph_payload.resolve()
    index = graph.filter_index()
    sample = np.ascontiguousarray(graph.valid.array[: min(8, len(graph.valid.array))])
    return {
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        "splits": _fingerprint(
            {"train": graph.train.array, "valid": graph.valid.array, "test": graph.test.array}
        ),
        "tail_filter": _filter_fingerprint(index, sample),
        "resolved_twice_is_memoised": graph_payload.resolve() is graph,
    }


def _publisher_child(conn):
    """Child process owning a bundle, kept alive until the parent finishes attaching."""
    handle = shm.publish_arrays({"x": np.arange(512, dtype=np.int64), "y": np.ones((4, 4))})
    conn.send(handle)
    conn.recv()
    shm.unpublish(handle.token)
    conn.send("done")
    conn.close()


# ---------------------------------------------------------------------------- publish/attach
class TestPublishAttach:
    def test_owner_views_round_trip_and_are_read_only(self):
        arrays = _sample_arrays()
        handle = shm.publish_arrays(arrays)
        try:
            views = shm.attach_arrays(handle)  # owner short-circuit
            assert _fingerprint(views) == _fingerprint(arrays)
            for view in views.values():
                assert not view.flags.writeable
            with pytest.raises(ValueError):
                views["floats64"][0, 0] = 1.0
            # Owner-side release is a no-op; the views stay valid until unpublish.
            shm.release_arrays(handle)
            assert views["ints64"][0, 0] == arrays["ints64"][0, 0]
        finally:
            shm.unpublish(handle.token)

    def test_handle_is_small_and_picklable(self):
        import pickle

        arrays = {"big": np.zeros((1000, 100))}
        handle = shm.publish_arrays(arrays)
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < 1024  # the point of the design: handles, not arrays
            assert pickle.loads(blob) == handle
            assert handle.total_bytes == 1000 * 100 * 8
        finally:
            shm.unpublish(handle.token)

    def test_publish_same_token_is_idempotent(self):
        arrays = {"x": np.arange(10)}
        first = shm.publish_arrays(arrays, token="idempotency-test")
        second = shm.publish_arrays({"ignored": np.zeros(99)}, token="idempotency-test")
        try:
            assert first is second or first == second
            assert shm.owned_tokens().count("idempotency-test") == 1
        finally:
            shm.unpublish("idempotency-test")

    def test_unpublish_removes_segments_and_is_idempotent(self):
        handle = shm.publish_arrays(_sample_arrays())
        names = [spec.name for _, spec in handle.segments]
        present = shm.leaked_segments()
        assert all(name in present for name in names if shm.SHM_PREFIX in name)
        shm.unpublish(handle.token)
        shm.unpublish(handle.token)  # idempotent
        remaining = shm.leaked_segments()
        assert not any(name in remaining for name in names)
        with pytest.raises(shm.ShmError):
            # The owner registry entry is gone, so this takes the attach path and
            # must report the unlinked segments instead of returning stale views.
            shm.attach_arrays(handle)

    def test_worker_side_attach_round_trip(self):
        """Real fork workers attach via shm_open+mmap and see byte-identical arrays."""
        arrays = _sample_arrays()
        handle = shm.publish_arrays(arrays)
        pool = WarmPool(2)
        try:
            fingerprints = pool.run("fidelity", _bundle_fingerprint, {"handle": handle}, list(range(8)))
            expected = _fingerprint(arrays)
            assert all(fp == expected for fp in fingerprints)
        finally:
            pool.close()
            shm.unpublish(handle.token)

    def test_owner_atexit_unlinks_on_normal_exit(self):
        """A publisher that exits without explicit cleanup still unlinks (atexit)."""
        script = (
            "import numpy as np\n"
            "from repro.runtime import shm\n"
            "handle = shm.publish_arrays({'x': np.arange(256)})\n"
            "print(handle.segments[0][1].name)\n"
        )
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        result = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True, check=True
        )
        name = result.stdout.strip().splitlines()[-1]
        assert name.startswith(shm.SHM_PREFIX)
        assert name not in shm.leaked_segments()


# ---------------------------------------------------------------------------- refcounts
class TestRefcountedAttachment:
    def test_cross_process_attach_is_refcounted(self):
        """Attach a bundle owned by another live process: memoised, refcounted, and
        unmapped exactly when the last release drops the count to zero."""
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(target=_publisher_child, args=(child_conn,))
        process.start()
        try:
            handle = parent_conn.recv()
            assert handle.owner_pid == process.pid
            first = shm.attach_arrays(handle)
            second = shm.attach_arrays(handle)  # refcount bump, same views
            assert first["x"] is second["x"]
            assert np.array_equal(first["x"], np.arange(512))
            assert handle.token in shm._ATTACHED
            assert shm._ATTACHED[handle.token].refcount == 2
            shm.release_arrays(handle)
            assert handle.token in shm._ATTACHED  # one reference still out
            shm.release_arrays(handle)
            assert handle.token not in shm._ATTACHED
            shm.release_arrays(handle)  # over-release is a no-op
        finally:
            parent_conn.send("finish")
            assert parent_conn.recv() == "done"
            process.join(timeout=10)
        assert process.exitcode == 0
        assert not any(spec.name in shm.leaked_segments() for _, spec in handle.segments)


# ---------------------------------------------------------------------------- crash safety
class TestWorkerCrash:
    def test_sigkilled_worker_leaks_no_segments_and_loses_no_results(self, tmp_path):
        """The ISSUE's fault injection: a worker SIGKILLs itself mid-map while holding
        zero-copy attachments.  The pool must respawn it, re-dispatch its chunks and
        return complete, correct results -- and because attachers are never known to
        the resource tracker, the hard kill must leave ``/dev/shm`` byte-for-byte as
        the publisher left it."""
        before = set(shm.leaked_segments())
        arrays = _sample_arrays()
        handle = shm.publish_arrays(arrays)
        expected_base = float(np.asarray(arrays["floats64"], dtype=np.float64).sum())
        marker = tmp_path / "kill-once.marker"
        pool = WarmPool(2)
        payloads = [{"index": index, "die": index == 3} for index in range(24)]
        try:
            results = pool.run(
                "crash-test", _attach_or_die, {"handle": handle, "marker": str(marker)}, payloads
            )
            assert results == [expected_base + index for index in range(24)]
            assert pool.respawns >= 1
            assert marker.exists()
            # The killed worker attached segments but owned none: nothing new may
            # appear in /dev/shm beyond what the (still live) publisher owns.
            during = set(shm.leaked_segments())
            published = {spec.name for _, spec in handle.segments}
            assert during - before == published
        finally:
            pool.close()
            shm.unpublish(handle.token)
        assert set(shm.leaked_segments()) - before == set()

    def test_worker_exception_surfaces_as_warm_pool_error(self):
        pool = WarmPool(1)
        try:
            with pytest.raises(WarmPoolError, match="boom"):
                pool.run("error-test", _raise_boom, None, [1, 2, 3])
        finally:
            pool.close()


def _raise_boom(shared, payload):
    raise ValueError(f"boom on {payload}")


# ---------------------------------------------------------------------------- warm pool
class TestWarmPool:
    def test_install_once_per_key_and_lru_bound(self):
        pool = WarmPool(1)
        try:
            for index in range(INSTALL_LRU + 2):
                pool.run(f"key-{index}", _echo_payload, index, [1, 2])
            assert len(pool.installed_keys()) == INSTALL_LRU
            assert pool.installed_keys()[-1] == f"key-{INSTALL_LRU + 1}"  # newest kept
            assert pool.installed_keys()[0] == "key-2"  # oldest two evicted
        finally:
            pool.close()

    def test_results_in_input_order_regardless_of_chunking(self):
        pool = WarmPool(3)
        try:
            payloads = list(range(50))
            assert pool.run("order-test", _echo_payload, None, payloads) == payloads
        finally:
            pool.close()

    def test_process_wide_pool_is_shared_and_survives_closure(self):
        first = get_warm_pool(2)
        assert get_warm_pool(2) is first
        first.close()
        replacement = get_warm_pool(2)
        assert replacement is not first
        assert replacement.run("revival-test", _echo_payload, None, [7]) == [7]

    def test_closed_pool_rejects_work(self):
        pool = WarmPool(1)
        pool.close()
        with pytest.raises(WarmPoolError):
            pool.run("closed-test", _echo_payload, None, [1])


def _echo_payload(shared, payload):
    return payload


# ---------------------------------------------------------------------------- graph payloads
class TestSharedGraphPayload:
    def test_publish_is_idempotent_and_resolves_to_original_in_owner(self, tiny_graph):
        payload = shm.publish_graph(tiny_graph)
        again = shm.publish_graph(tiny_graph)
        assert payload.token == again.token == shm.graph_digest(tiny_graph)
        assert payload.resolve() is tiny_graph

    def test_digest_tracks_content_not_identity(self, tiny_graph):
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.triples import TripleSet

        reordered = KnowledgeGraph(
            name=tiny_graph.name,
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            train=TripleSet(tiny_graph.train.array[::-1].copy()),
            valid=tiny_graph.valid,
            test=tiny_graph.test,
        )
        assert shm.graph_digest(reordered) != shm.graph_digest(tiny_graph)

    def test_worker_reconstruction_is_byte_identical(self, tiny_graph):
        """A worker that cannot see the original object rebuilds the graph (and its
        CSR filter index) from shared memory, byte-identical to the publisher's."""
        payload = shm.publish_graph(tiny_graph)
        expected_splits = _fingerprint(
            {"train": tiny_graph.train.array, "valid": tiny_graph.valid.array, "test": tiny_graph.test.array}
        )
        sample = np.ascontiguousarray(tiny_graph.valid.array[: min(8, len(tiny_graph.valid.array))])
        expected_filter = _filter_fingerprint(tiny_graph.filter_index(), sample)
        pool = WarmPool(2)
        try:
            probes = pool.run(
                "graph-reconstruct", _graph_reconstruct_probe, {"graph_payload": payload}, list(range(4))
            )
        finally:
            pool.close()
        for probe in probes:
            assert probe["name"] == tiny_graph.name
            assert probe["num_entities"] == tiny_graph.num_entities
            assert probe["num_relations"] == tiny_graph.num_relations
            assert probe["splits"] == expected_splits
            assert probe["tail_filter"] == expected_filter
            assert probe["resolved_twice_is_memoised"]


# ---------------------------------------------------------------------------- soak
@pytest.mark.slow
class TestWarmPoolSoak:
    def test_soak_mixed_payloads_with_injected_crash_and_stable_rss(self, tmp_path):
        """The ISSUE's stress test: 200 mixed tasks over a 4-worker pool with one
        injected SIGKILL mid-run.  No deadlock (bounded wall clock via the liveness
        poll), no duplicate or missing results, and worker RSS stays flat across the
        second half of the run (the install LRU bounds per-worker memory)."""
        arrays = _sample_arrays()
        handle = shm.publish_arrays(arrays)
        base = float(np.asarray(arrays["floats64"], dtype=np.float64).sum())
        marker = tmp_path / "soak-kill.marker"
        pool = WarmPool(4)
        rss_after_warmup = {}
        try:
            completed = 0
            for batch in range(10):
                payloads = [
                    {"index": completed + offset, "die": (completed + offset) == 57}
                    for offset in range(20)
                ]
                # Rotate payload keys beyond the LRU bound so installs keep cycling.
                key = f"soak-{batch % (INSTALL_LRU + 2)}"
                results = pool.run(key, _attach_or_die, {"handle": handle, "marker": str(marker)}, payloads)
                assert results == [base + float(completed + offset) for offset in range(20)]
                completed += 20
                if batch == 4:
                    rss_after_warmup = _worker_rss(pool)
            assert completed == 200
            assert pool.respawns >= 1 and marker.exists()
            rss_final = _worker_rss(pool)
            for pid, final_kb in rss_final.items():
                start_kb = rss_after_warmup.get(pid)
                if start_kb is None:
                    continue  # respawned after the measurement point
                assert final_kb - start_kb < 64 * 1024, (
                    f"worker {pid} RSS grew {final_kb - start_kb} kB across the soak"
                )
        finally:
            pool.close()
            shm.unpublish(handle.token)


def _worker_rss(pool: WarmPool) -> dict:
    """``VmRSS`` in kB per live worker pid (empty off-Linux: the assertion degrades)."""
    rss = {}
    for slot in pool._slots:
        status = f"/proc/{slot.process.pid}/status"
        if not os.path.exists(status):  # pragma: no cover - non-Linux
            continue
        for line in open(status, encoding="utf-8"):
            if line.startswith("VmRSS:"):
                rss[slot.process.pid] = int(line.split()[1])
                break
    return rss


# ---------------------------------------------------------------------------- timing helper
def test_leaked_segments_scopes_to_our_prefix(tmp_path):
    """The leak scanner must never report foreign /dev/shm entries."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm unavailable")
    foreign = "/dev/shm/repro-unrelated-segment"
    with open(foreign, "w", encoding="utf-8") as stream:
        stream.write("not ours")
    try:
        assert "repro-unrelated-segment" not in shm.leaked_segments()
    finally:
        os.unlink(foreign)
    handle = shm.publish_arrays({"x": np.arange(4)})
    try:
        assert all(name.startswith(shm.SHM_PREFIX) for name in shm.leaked_segments())
    finally:
        shm.unpublish(handle.token)
