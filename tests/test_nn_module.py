"""Tests for the Module / Parameter base classes."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, Module, Parameter


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, seed=0)
        self.second = Linear(8, 2, seed=1)

    def forward(self, x):
        return self.second(self.first(x).tanh())


class TestRegistration:
    def test_parameters_discovered_recursively(self):
        model = TwoLayer()
        names = dict(model.named_parameters())
        assert set(names) == {"first.weight", "first.bias", "second.weight", "second.bias"}
        assert len(model.parameters()) == 4

    def test_register_parameter_explicitly(self):
        module = Module()
        module.register_parameter("scale", Parameter(np.ones(3)))
        assert "scale" in dict(module.named_parameters())

    def test_named_modules(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "first" in names and "second" in names


class TestTrainingState:
    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(Tensor(np.random.default_rng(0).normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_mode_recursive(self):
        model = TwoLayer()
        model.eval()
        assert not model.training and not model.first.training
        model.train()
        assert model.training and model.second.training


class TestStateDict:
    def test_roundtrip(self):
        model = TwoLayer()
        state = model.state_dict()
        fresh = TwoLayer()
        fresh.load_state_dict(state)
        for (name_a, param_a), (name_b, param_b) in zip(model.named_parameters(), fresh.named_parameters()):
            assert name_a == name_b
            np.testing.assert_allclose(param_a.data, param_b.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(model.first.weight.data, 0.0)

    def test_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["first.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(None)
