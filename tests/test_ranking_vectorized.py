"""Property tests: the vectorized filtered-ranking path vs the naive reference.

The CSR :class:`~repro.kg.filter_index.FilterIndex` plus the compiled no-grad kernels
must produce ranks *exactly* equal to the retained seed implementation
(:mod:`repro.eval.reference`) -- on randomized graphs, across relation-group
assignments, with empty filters and the all-known-tails edge case.  Bit-identity is
what lets every paper-table benchmark keep its printed metrics unchanged while the
wall clock drops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import NaiveFilterIndex, NaiveRankingEvaluator, RankingEvaluator
from repro.kg import FilterIndex, KnowledgeGraph, TripleSet
from repro.models import KGEModel
from repro.scoring import BlockStructure, RotatEScorer, TransEScorer
from repro.scoring.kernels import kernel_for


# ---------------------------------------------------------------------------- helpers
def random_graph(seed: int, num_entities: int = 30, num_relations: int = 6, n: int = 400) -> KnowledgeGraph:
    """A random dense-ish graph with duplicated keys across splits."""
    rng = np.random.default_rng(seed)
    triples = np.stack(
        [
            rng.integers(0, num_entities, size=n),
            rng.integers(0, num_relations, size=n),
            rng.integers(0, num_entities, size=n),
        ],
        axis=1,
    ).astype(np.int64)
    triples = np.unique(triples, axis=0)
    rng.shuffle(triples)
    n = len(triples)
    return KnowledgeGraph(
        name=f"random-{seed}",
        num_entities=num_entities,
        num_relations=num_relations,
        train=TripleSet(triples[: n // 2].copy()),
        valid=TripleSet(triples[n // 2 : 3 * n // 4].copy()),
        test=TripleSet(triples[3 * n // 4 :].copy()),
    )


def random_model(graph: KnowledgeGraph, num_groups: int, seed: int, dim: int = 16) -> KGEModel:
    rng = np.random.default_rng(seed + 1000)
    structures = [BlockStructure.random(4, rng) for _ in range(num_groups)]
    assignment = rng.integers(0, num_groups, size=graph.num_relations)
    return KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=dim,
        scorers=structures,
        assignment=assignment,
        seed=seed,
    )


def all_known_tails_graph() -> KnowledgeGraph:
    """Entity 0 under relation 0 links to *every* entity: the fully-filtered edge case."""
    num_entities = 12
    rows = [(0, 0, t) for t in range(num_entities)]          # all-known-tails key (0, 0)
    rows += [(t, 1, 0) for t in range(num_entities)]         # all-known-heads key (1, 0)
    rows += [(3, 2, 4), (5, 2, 6), (7, 0, 8)]
    train = TripleSet(rows)
    valid = TripleSet([(0, 0, 5), (2, 1, 0)])
    test = TripleSet([(0, 0, 9), (9, 1, 0), (3, 2, 4)])
    return KnowledgeGraph("edge", num_entities, 3, train, valid, test)


# ---------------------------------------------------------------------------- filter index
class TestCsrFilterIndex:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive_lookups(self, seed):
        graph = random_graph(seed)
        csr = FilterIndex.from_graph(graph)
        naive = NaiveFilterIndex.from_graph(graph)
        assert len(csr) == len(naive)
        for h in range(graph.num_entities):
            for r in range(graph.num_relations):
                assert csr.known_tails(h, r) == naive.known_tails(h, r)
                for t in (0, graph.num_entities - 1):
                    assert csr.contains(h, r, t) == naive.contains(h, r, t)
        for r in range(graph.num_relations):
            for t in range(graph.num_entities):
                assert csr.known_heads(r, t) == naive.known_heads(r, t)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_masks_match_naive(self, seed):
        graph = random_graph(seed)
        csr = FilterIndex.from_graph(graph)
        naive = NaiveFilterIndex.from_graph(graph)
        for h, r, t in graph.test:
            np.testing.assert_array_equal(
                csr.tail_filter_mask(h, r, t, graph.num_entities),
                naive.tail_filter_mask(h, r, t, graph.num_entities),
            )
            np.testing.assert_array_equal(
                csr.head_filter_mask(r, t, h, graph.num_entities),
                naive.head_filter_mask(r, t, h, graph.num_entities),
            )

    @pytest.mark.parametrize("direction", ["tail", "head"])
    def test_flat_filter_indices_match_masks(self, direction):
        graph = random_graph(7)
        csr = FilterIndex.from_graph(graph)
        batch = graph.valid.array
        rows, cols = csr.flat_filter_indices(batch, direction)
        dense = np.zeros((len(batch), graph.num_entities), dtype=bool)
        dense[rows, cols] = True
        for i, (h, r, t) in enumerate(batch):
            if direction == "tail":
                expected = csr.tail_filter_mask(int(h), int(r), int(t), graph.num_entities)
                expected[int(t)] = True  # flat filters include the target; callers restore it
            else:
                expected = csr.head_filter_mask(int(r), int(t), int(h), graph.num_entities)
                expected[int(h)] = True
            np.testing.assert_array_equal(dense[i], expected)

    def test_flat_filter_unknown_keys_are_empty(self):
        graph = random_graph(11)
        probe = np.array([[graph.num_entities - 1, graph.num_relations - 1, 0]], dtype=np.int64)
        # Force a key that cannot exist by using an otherwise-unused relation id.
        empty_graph_index = FilterIndex([TripleSet.empty()])
        rows, cols = empty_graph_index.flat_filter_indices(probe, "tail")
        assert rows.size == 0 and cols.size == 0
        assert not empty_graph_index.contains(0, 0, 0)
        assert len(empty_graph_index) == 0

    def test_ids_beyond_observed_range_do_not_alias(self):
        """Regression: ids valid for the graph but absent from the index must not
        alias onto other groups' encoded keys (they used to, when the encoding moduli
        were derived from the observed maxima only)."""
        index = FilterIndex([TripleSet([(1, 0, 5), (0, 0, 1)])])
        naive = NaiveFilterIndex([TripleSet([(1, 0, 5), (0, 0, 1)])])
        # relation 1 was never observed: known_tails(0, 1) used to collide with (h=1, r=0).
        assert index.known_tails(0, 1) == naive.known_tails(0, 1) == set()
        assert index.known_heads(7, 0) == naive.known_heads(7, 0) == set()
        assert not index.contains(0, 1, 5)
        assert not index.contains(0, 0, 99)
        rows, cols = index.flat_filter_indices(np.array([[0, 1, 5]]), "tail")
        assert rows.size == 0 and cols.size == 0
        # Explicit domain sizes (the graph path) encode unobserved ids injectively.
        sized = FilterIndex([TripleSet([(1, 0, 5), (0, 0, 1)])], num_entities=10, num_relations=3)
        assert sized.known_tails(0, 1) == set()
        assert sized.known_tails(1, 0) == {5}

    def test_per_relation_does_not_evict_split_filters(self):
        """Regression: the one-off per-relation subsets must not churn the hot
        whole-split entries out of the flat-filter LRU."""
        graph = random_graph(15)
        index = graph.filter_index()
        split_filter = index.flat_filter(graph.test.array, "tail")
        model = random_model(graph, 1, seed=0)
        RankingEvaluator(graph).per_relation(model, split="test")
        assert index.flat_filter(graph.test.array, "tail") is split_filter

    def test_sampled_evaluations_do_not_evict_split_filters(self):
        """Regression: per-validation random samples (fresh seed each check, as in
        Trainer.fit) are one-offs and must not churn the shared flat-filter LRU."""
        graph = random_graph(16)
        index = graph.filter_index()
        split_filter = index.flat_filter(graph.valid.array, "tail")
        model = random_model(graph, 1, seed=0)
        evaluator = RankingEvaluator(graph)
        for seed in range(40):  # more distinct samples than the LRU holds
            evaluator.evaluate(model, split="valid", sample_size=5, seed=seed)
        assert index.flat_filter(graph.valid.array, "tail") is split_filter

    def test_memoised_per_graph(self):
        graph = random_graph(5)
        assert graph.filter_index() is graph.filter_index()
        assert FilterIndex.from_graph(graph) is graph.filter_index()
        # Flat filters of an identical array are served from the content-keyed memo.
        first = graph.filter_index().flat_filter(graph.valid.array, "tail")
        second = graph.filter_index().flat_filter(graph.valid.array.copy(), "tail")
        assert first is second


# ---------------------------------------------------------------------------- kernels
class TestScoringKernels:
    @pytest.mark.parametrize("num_groups", [1, 2, 3])
    def test_block_kernels_bit_identical(self, num_groups):
        graph = random_graph(2)
        model = random_model(graph, num_groups, seed=3)
        batch = graph.test.array[:40]
        for direction in ("tail", "head"):
            reference = (
                model.score_all_tails(batch) if direction == "tail" else model.score_all_heads(batch)
            ).data
            np.testing.assert_array_equal(model.score_all_arrays(batch, direction), reference)

    @pytest.mark.parametrize("scorer", [TransEScorer(norm=1), TransEScorer(norm=2), RotatEScorer()])
    def test_fallback_kernels_bit_identical(self, scorer):
        graph = random_graph(4)
        model = KGEModel(graph.num_entities, graph.num_relations, dim=16, scorers=scorer, seed=1)
        batch = graph.test.array[:20]
        for direction in ("tail", "head"):
            reference = (
                model.score_all_tails(batch) if direction == "tail" else model.score_all_heads(batch)
            ).data
            np.testing.assert_array_equal(model.score_all_arrays(batch, direction), reference)

    def test_kernel_output_is_fresh_and_writable(self):
        graph = random_graph(6)
        model = random_model(graph, 1, seed=0)
        scores = model.score_all_arrays(graph.test.array[:8], "tail")
        assert scores.flags.writeable
        assert not np.shares_memory(scores, model.entities.weight.data)
        scores[:] = 0.0  # masking in place must be safe

    def test_degenerate_all_zero_structure(self):
        graph = random_graph(8)
        model = KGEModel(graph.num_entities, graph.num_relations, dim=16,
                         scorers=BlockStructure.zeros(4), seed=0)
        batch = graph.test.array[:5]
        scores = model.score_all_arrays(batch, "tail")
        np.testing.assert_array_equal(scores, np.zeros_like(scores))

    def test_kernel_memoised_per_scorer(self):
        model = random_model(random_graph(9), 1, seed=0)
        assert kernel_for(model.scorers[0]) is kernel_for(model.scorers[0])


# ---------------------------------------------------------------------------- end-to-end ranks
class TestVectorizedRanksMatchNaive:
    @pytest.mark.parametrize("seed,num_groups", [(0, 1), (1, 2), (2, 3), (3, 2)])
    def test_randomized_graphs(self, seed, num_groups):
        graph = random_graph(seed)
        model = random_model(graph, num_groups, seed=seed)
        naive = NaiveRankingEvaluator(graph)
        fast = RankingEvaluator(graph)
        for split in (graph.valid, graph.test):
            np.testing.assert_array_equal(naive.ranks(model, split), fast.ranks(model, split))

    def test_all_known_tails_edge_case(self):
        graph = all_known_tails_graph()
        model = random_model(graph, 2, seed=0)
        naive = NaiveRankingEvaluator(graph)
        fast = RankingEvaluator(graph)
        for split in (graph.valid, graph.test):
            np.testing.assert_array_equal(naive.ranks(model, split), fast.ranks(model, split))
        # The fully-filtered query still ranks its target first among survivors.
        ranks = fast.ranks(model, TripleSet([(0, 0, 5)]))
        assert ranks[0] == 1  # every other candidate tail is a known true triple

    def test_triples_outside_the_index(self):
        """Ranking triples with unknown (h, r) keys -- completely empty filters."""
        graph = random_graph(10, num_entities=20, num_relations=4)
        model = random_model(graph, 1, seed=2)
        probe = TripleSet([(0, 3, 1), (19, 3, 0)])  # relation 3 may be unused by these keys
        naive = NaiveRankingEvaluator(graph)
        fast = RankingEvaluator(graph)
        np.testing.assert_array_equal(naive.ranks(model, probe), fast.ranks(model, probe))

    def test_unfiltered_matches_naive(self):
        graph = random_graph(12)
        model = random_model(graph, 2, seed=5)
        naive = NaiveRankingEvaluator(graph, filtered=False)
        fast = RankingEvaluator(graph, filtered=False)
        np.testing.assert_array_equal(naive.ranks(model, graph.test), fast.ranks(model, graph.test))

    def test_small_batch_size_same_ranks(self):
        graph = random_graph(13)
        model = random_model(graph, 2, seed=1)
        big = RankingEvaluator(graph, batch_size=512)
        small = RankingEvaluator(graph, batch_size=7)
        # Batching interleaves tail/head blocks per batch, so only the multiset of
        # ranks (and hence every aggregate metric) is batch-size invariant.
        np.testing.assert_array_equal(
            np.sort(big.ranks(model, graph.test)), np.sort(small.ranks(model, graph.test))
        )
        # Aggregates are means over the reordered ranks, so they agree to rounding
        # (summation order shifts the last ulp); the printed rows are identical.
        assert big.evaluate(model, split="test").as_row() == small.evaluate(model, split="test").as_row()

    def test_per_relation_matches_for_relation_scan(self):
        graph = random_graph(14)
        model = random_model(graph, 2, seed=4)
        fast = RankingEvaluator(graph)
        grouped = fast.per_relation(model, split="test")
        for relation in np.unique(graph.test.relations):
            subset = graph.test.for_relation(int(relation))
            expected = fast.evaluate(model, split="test", relations=[int(relation)])
            assert grouped[int(relation)] == expected
            assert grouped[int(relation)].count == 2 * len(subset)
