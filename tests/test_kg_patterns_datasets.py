"""Tests for relation-pattern detection and the synthetic benchmark generators."""

import collections

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARK_NAMES,
    PatternSpec,
    SyntheticKGConfig,
    SyntheticKGGenerator,
    benchmark_config,
    load_benchmark,
)
from repro.kg import RelationPattern, RelationPatternAnalyzer, TripleSet
from tests.conftest import make_tiny_config


class TestPatternAnalyzer:
    def test_symmetric_relation_detected(self):
        pairs = [(0, 1), (2, 3), (4, 5)]
        triples = TripleSet([(a, 0, b) for a, b in pairs] + [(b, 0, a) for a, b in pairs])
        report = RelationPatternAnalyzer().analyze_triples(triples, 1)[0]
        assert report.pattern is RelationPattern.SYMMETRIC
        assert report.symmetry_score == pytest.approx(1.0)

    def test_antisymmetric_relation_detected(self):
        triples = TripleSet([(i, 0, i + 1) for i in range(10)])
        report = RelationPatternAnalyzer().analyze_triples(triples, 1)[0]
        assert report.pattern is RelationPattern.ANTI_SYMMETRIC

    def test_inverse_pair_detected(self):
        forward = [(i, 0, i + 10) for i in range(8)]
        backward = [(t, 1, h) for h, _, t in forward]
        triples = TripleSet(forward + backward)
        reports = RelationPatternAnalyzer().analyze_triples(triples, 2)
        assert reports[0].pattern is RelationPattern.INVERSE
        assert reports[0].inverse_partner == 1
        assert reports[1].pattern is RelationPattern.INVERSE

    def test_general_asymmetric_detected(self):
        forward = [(i, 0, i + 10) for i in range(9)]
        some_reverse = [(forward[i][2], 0, forward[i][0]) for i in range(3)]
        triples = TripleSet(forward + some_reverse)
        report = RelationPatternAnalyzer().analyze_triples(triples, 1)[0]
        assert report.pattern is RelationPattern.GENERAL_ASYMMETRIC

    def test_low_support_defaults_to_general(self):
        triples = TripleSet([(0, 0, 1)])
        report = RelationPatternAnalyzer(min_support=5).analyze_triples(triples, 1)[0]
        assert report.pattern is RelationPattern.GENERAL_ASYMMETRIC

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RelationPatternAnalyzer(symmetric_threshold=0.2, antisymmetric_threshold=0.5)
        with pytest.raises(ValueError):
            RelationPatternAnalyzer(inverse_threshold=0.0)

    def test_unknown_split_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            RelationPatternAnalyzer().analyze(tiny_graph, split="bogus")

    def test_pattern_groups_cover_all_relations(self, tiny_graph):
        groups = RelationPatternAnalyzer().pattern_groups(tiny_graph)
        covered = sorted(r for ids in groups.values() for r in ids)
        assert covered == list(range(tiny_graph.num_relations))


class TestSyntheticConfig:
    def test_inverse_count_must_be_even(self):
        with pytest.raises(ValueError):
            PatternSpec(RelationPattern.INVERSE, 3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticKGConfig("x", 5, (PatternSpec(RelationPattern.SYMMETRIC, 1),))
        with pytest.raises(ValueError):
            SyntheticKGConfig("x", 50, ())

    def test_scaled_changes_sizes(self):
        config = make_tiny_config()
        bigger = config.scaled(2.0)
        assert bigger.num_entities == config.num_entities * 2
        assert bigger.num_relations == config.num_relations
        with pytest.raises(ValueError):
            config.scaled(0.0)


class TestSyntheticGenerator:
    def test_deterministic_generation(self):
        config = make_tiny_config()
        first = SyntheticKGGenerator(config).generate(seed=7)
        second = SyntheticKGGenerator(config).generate(seed=7)
        assert first.train == second.train
        assert first.test == second.test

    def test_different_seeds_differ(self):
        config = make_tiny_config()
        first = SyntheticKGGenerator(config).generate(seed=1)
        second = SyntheticKGGenerator(config).generate(seed=2)
        assert first.train != second.train

    def test_every_relation_in_training_split(self, tiny_graph):
        present = set(int(r) for r in tiny_graph.train.relation_ids())
        assert present == set(range(tiny_graph.num_relations))

    def test_eval_entities_seen_in_training(self, tiny_graph):
        train_entities = set(int(e) for e in tiny_graph.train.entities())
        for split in (tiny_graph.valid, tiny_graph.test):
            for head, _, tail in split:
                assert head in train_entities and tail in train_entities

    def test_planted_patterns_are_recovered(self, tiny_graph):
        generator = SyntheticKGGenerator(make_tiny_config())
        planted = generator.relation_pattern_labels()
        detected = RelationPatternAnalyzer().analyze(tiny_graph)
        planted_counts = collections.Counter(p.value for p in planted)
        detected_counts = collections.Counter(r.pattern.value for r in detected)
        assert planted_counts == detected_counts

    def test_no_self_loops(self, tiny_graph):
        triples = tiny_graph.all_triples()
        assert not np.any(triples.heads == triples.tails)


class TestRegistry:
    def test_all_benchmarks_load(self):
        for name in BENCHMARK_NAMES:
            config = benchmark_config(name)
            assert config.num_relations > 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            benchmark_config("not_a_dataset")

    def test_load_benchmark_is_cached(self):
        first = load_benchmark("wn18rr_like", scale=0.5, seed=3)
        second = load_benchmark("wn18rr_like", scale=0.5, seed=3)
        assert first is second

    def test_wn18rr_like_has_no_inverse_relations(self):
        graph = load_benchmark("wn18rr_like", scale=0.6, seed=1)
        summary = RelationPatternAnalyzer().summary(graph)
        assert summary["inverse"] == 0

    def test_wn18_like_has_inverse_relations(self):
        graph = load_benchmark("wn18_like", scale=0.6, seed=1)
        summary = RelationPatternAnalyzer().summary(graph)
        assert summary["inverse"] > 0
