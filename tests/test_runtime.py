"""Tests of the runtime layer: cache semantics, worker-count determinism, the
stepwise Searcher protocol (registry, budgets, checkpoint/resume equivalence for
every registered algorithm), the SearchRunner pipeline and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.runtime import (
    CheckpointError,
    EvalCache,
    EvaluationPool,
    RunConfig,
    SearchRunner,
    load_search_checkpoint,
    load_search_result,
    save_search_checkpoint,
    save_search_result,
)
from repro.runtime.evaluation import (
    candidate_payload,
    one_shot_shared_payload,
    score_candidate_one_shot,
)
from repro.search import (
    ERASConfig,
    ERASSearcher,
    RandomSearchConfig,
    RandomSearcher,
    SearchBudget,
    SearcherOptions,
    available_searchers,
    create_searcher,
    register_searcher,
    unregister_searcher,
)
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.models.trainer import TrainerConfig

#: Every algorithm this repo ships; the registry tests assert the two stay in sync,
#: so adding a searcher without protocol test coverage fails loudly.
BUILTIN_SEARCHERS = ("eras", "eras_n1", "eras_diff", "autosf", "random", "bayes")


def _tiny_searcher_options() -> SearcherOptions:
    """Budgets small enough to run every registered searcher in a unit test."""
    return SearcherOptions(
        num_groups=2,
        search_epochs=2,
        num_candidates=4,
        derive_samples=4,
        dim=16,
        seed=0,
        proxy_epochs=2,
    )

_CALLS = []


def _record_and_double(shared, payload):
    """Module-level worker (picklable) that logs every in-process invocation."""
    _CALLS.append(payload)
    return float(shared * payload)


def _square(shared, payload):
    return float(payload) ** 2


def _eras_config(epochs: int = 3) -> ERASConfig:
    return ERASConfig(
        epochs=epochs,
        derive_samples=6,
        supernet=SupernetConfig(dim=16, batch_size=128),
        seed=0,
    )


# ---------------------------------------------------------------------------- cache
class TestEvalCache:
    def test_hit_miss_accounting(self):
        cache = EvalCache()
        assert cache.get("a") is None
        assert cache.misses == 1 and cache.hits == 0
        cache.put("a", 0.5)
        assert cache.get("a") == 0.5
        assert cache.hits == 1 and cache.misses == 1
        assert "a" in cache and len(cache) == 1
        assert cache.hit_rate == 0.5

    def test_eviction_and_clear(self):
        cache = EvalCache(max_size=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        cache.put("c", 3.0)  # evicts the oldest entry ("a")
        assert "a" not in cache and "b" in cache and "c" in cache
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_non_positive_max_size(self):
        with pytest.raises(ValueError):
            EvalCache(max_size=0)


# ---------------------------------------------------------------------------- pool
class TestEvaluationPool:
    def test_serial_map_preserves_order(self):
        pool = EvaluationPool(n_workers=1)
        assert pool.map(_square, [3, 1, 2]) == [9.0, 1.0, 4.0]

    def test_parallel_map_matches_serial(self):
        payloads = list(range(6))
        serial = EvaluationPool(n_workers=1).map(_square, payloads)
        parallel = EvaluationPool(n_workers=2).map(_square, payloads)
        assert serial == parallel

    def test_duplicate_keys_evaluated_once(self):
        _CALLS.clear()
        pool = EvaluationPool(n_workers=1, cache=EvalCache())
        results = pool.map(_record_and_double, [2, 2, 3], shared=10, keys=["k2", "k2", "k3"])
        assert results == [20.0, 20.0, 30.0]
        assert _CALLS == [2, 3]  # the duplicate key never reached the worker

    def test_cache_spans_map_calls(self):
        _CALLS.clear()
        cache = EvalCache()
        pool = EvaluationPool(n_workers=1, cache=cache)
        pool.map(_record_and_double, [5], shared=2, keys=["k5"])
        pool.map(_record_and_double, [5], shared=2, keys=["k5"])
        assert _CALLS == [5]
        assert cache.hits == 1 and cache.misses == 1  # first call missed, second hit

    def test_key_payload_length_mismatch(self):
        with pytest.raises(ValueError):
            EvaluationPool(n_workers=1).map(_square, [1, 2], keys=["only-one"])

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            EvaluationPool(n_workers=-1)
        assert EvaluationPool(n_workers=0).n_workers >= 1  # 0 = all cores


# ---------------------------------------------------------------------------- determinism
class TestWorkerDeterminism:
    def test_one_shot_worker_matches_supernet(self, tiny_graph):
        """The pool worker reproduces the supernet's in-process scoring bit for bit."""
        supernet = SharedEmbeddingSupernet(tiny_graph, num_groups=2, config=SupernetConfig(dim=16))
        from repro.search.space import RelationAwareSearchSpace
        from repro.search.result import Candidate
        from repro.utils.rng import new_rng

        space = RelationAwareSearchSpace(num_blocks=4, num_groups=2)
        candidate = Candidate(tuple(space.random_candidate(new_rng(0))))
        shared = one_shot_shared_payload(supernet)
        worker_score = score_candidate_one_shot(shared, candidate_payload(candidate))
        assert worker_score == supernet.one_shot_validation_mrr(candidate)

    def test_eras_search_identical_across_worker_counts(self, tiny_graph):
        config = _eras_config()
        serial = ERASSearcher(config, pool=EvaluationPool(n_workers=1, cache=EvalCache())).search(tiny_graph)
        parallel = ERASSearcher(config, pool=EvaluationPool(n_workers=2, cache=EvalCache())).search(tiny_graph)
        assert serial.best_candidate.signature() == parallel.best_candidate.signature()
        assert serial.best_valid_mrr == parallel.best_valid_mrr
        assert serial.evaluations == parallel.evaluations
        assert np.array_equal(serial.best_assignment, parallel.best_assignment)

    def test_random_search_identical_across_worker_counts(self, tiny_graph):
        config = RandomSearchConfig(
            num_candidates=3,
            embedding_dim=16,
            trainer=TrainerConfig(epochs=2, valid_every=1, patience=1, seed=0),
            seed=0,
        )
        serial = RandomSearcher(config, pool=EvaluationPool(n_workers=1)).search(tiny_graph)
        parallel = RandomSearcher(config, pool=EvaluationPool(n_workers=2)).search(tiny_graph)
        assert serial.best_candidate.signature() == parallel.best_candidate.signature()
        assert serial.best_valid_mrr == parallel.best_valid_mrr

    def test_autosf_search_identical_across_worker_counts(self, tiny_graph):
        from repro.search import AutoSFConfig, AutoSFSearcher

        config = AutoSFConfig(
            max_budget=5,
            num_parents=2,
            num_sampled_children=3,
            top_k=2,
            embedding_dim=16,
            trainer=TrainerConfig(epochs=2, valid_every=1, patience=1, seed=0),
            seed=0,
        )
        serial = AutoSFSearcher(config, pool=EvaluationPool(n_workers=1)).search(tiny_graph)
        parallel = AutoSFSearcher(config, pool=EvaluationPool(n_workers=2)).search(tiny_graph)
        assert serial.best_candidate.signature() == parallel.best_candidate.signature()
        assert serial.best_valid_mrr == parallel.best_valid_mrr
        assert serial.evaluations == parallel.evaluations

    def test_bayes_search_identical_across_worker_counts(self, tiny_graph):
        from repro.search import BayesSearchConfig, BayesSearcher

        config = BayesSearchConfig(
            num_candidates=4,
            initial_random=3,
            embedding_dim=16,
            trainer=TrainerConfig(epochs=2, valid_every=1, patience=1, seed=0),
            seed=0,
        )
        serial = BayesSearcher(config, pool=EvaluationPool(n_workers=1)).search(tiny_graph)
        parallel = BayesSearcher(config, pool=EvaluationPool(n_workers=2)).search(tiny_graph)
        assert serial.best_candidate.signature() == parallel.best_candidate.signature()
        assert serial.best_valid_mrr == parallel.best_valid_mrr
        assert serial.evaluations == parallel.evaluations


# ---------------------------------------------------------------------------- checkpointing
class TestCheckpoint:
    def test_resume_is_bit_identical(self, tiny_graph, tmp_path):
        config = _eras_config(epochs=4)
        path = tmp_path / "checkpoint.json"

        searcher = ERASSearcher(config)
        state = searcher.init_state(tiny_graph)
        for _ in range(4):
            searcher.run_epoch(state)
        uninterrupted = searcher.finalize(state)

        first_half = ERASSearcher(config)
        state = first_half.init_state(tiny_graph)
        for _ in range(2):
            first_half.run_epoch(state)
        save_search_checkpoint(path, first_half, state)

        second_half = ERASSearcher(config)
        resumed = load_search_checkpoint(path, second_half, tiny_graph)
        assert resumed.epochs_completed == 2
        for _ in range(2):
            second_half.run_epoch(resumed)
        result = second_half.finalize(resumed)

        assert result.best_candidate.signature() == uninterrupted.best_candidate.signature()
        assert result.best_valid_mrr == uninterrupted.best_valid_mrr
        assert result.evaluations == uninterrupted.evaluations
        assert np.array_equal(result.best_assignment, uninterrupted.best_assignment)

    def test_config_mismatch_is_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "checkpoint.json"
        searcher = ERASSearcher(_eras_config())
        state = searcher.init_state(tiny_graph)
        searcher.run_epoch(state)
        save_search_checkpoint(path, searcher, state)
        other = ERASSearcher(_eras_config(epochs=5))
        with pytest.raises(CheckpointError):
            load_search_checkpoint(path, other, tiny_graph)

    def test_missing_checkpoint_is_rejected(self, tiny_graph, tmp_path):
        with pytest.raises(CheckpointError):
            load_search_checkpoint(tmp_path / "absent.json", ERASSearcher(_eras_config()), tiny_graph)

    def test_graph_content_mismatch_is_rejected(self, tiny_graph, tmp_path):
        """Same dataset name and shapes but different content must not resume."""
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.triples import TripleSet

        path = tmp_path / "checkpoint.json"
        searcher = ERASSearcher(_eras_config())
        state = searcher.init_state(tiny_graph)
        searcher.run_epoch(state)
        save_search_checkpoint(path, searcher, state)
        # Same name, entity/relation counts and split sizes -- only the training
        # triples are ordered differently, as a different data seed would produce.
        other_graph = KnowledgeGraph(
            name=tiny_graph.name,
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            train=TripleSet(tiny_graph.train.array[::-1].copy()),
            valid=tiny_graph.valid,
            test=tiny_graph.test,
            entity_vocab=tiny_graph.entity_vocab,
            relation_vocab=tiny_graph.relation_vocab,
        )
        with pytest.raises(CheckpointError):
            load_search_checkpoint(path, ERASSearcher(_eras_config()), other_graph)

    def test_search_result_round_trip(self, tiny_graph, tmp_path):
        result = ERASSearcher(_eras_config(epochs=1)).search(tiny_graph)
        path = tmp_path / "result.json"
        save_search_result(result, path)
        loaded = load_search_result(path)
        assert loaded.best_candidate.signature() == result.best_candidate.signature()
        assert loaded.best_valid_mrr == result.best_valid_mrr
        assert np.array_equal(loaded.best_assignment, result.best_assignment)
        assert [c.signature() for c in loaded.extras["top_candidates"]] == [
            c.signature() for c in result.extras["top_candidates"]
        ]


# ---------------------------------------------------------------------------- registry
class TestSearcherRegistry:
    def test_builtins_registered(self):
        assert set(available_searchers()) == set(BUILTIN_SEARCHERS)

    def test_unknown_name_raises_listing_available(self):
        with pytest.raises(ValueError) as excinfo:
            create_searcher("gradient-descent")
        message = str(excinfo.value)
        for name in BUILTIN_SEARCHERS:
            assert name in message

    def test_runconfig_rejects_unknown_searcher_listing_available(self):
        """The old trailing-else fell through to Bayes; now the name must be registered."""
        with pytest.raises(ValueError) as excinfo:
            RunConfig(searcher="hillclimb")
        message = str(excinfo.value)
        for name in BUILTIN_SEARCHERS:
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_searcher("eras", lambda options, pool: None)

    def test_third_party_registration_reaches_runconfig(self):
        register_searcher(
            "thirdparty-test",
            lambda options, pool: RandomSearcher(
                RandomSearchConfig(num_candidates=2, seed=options.seed), pool=pool
            ),
        )
        try:
            assert "thirdparty-test" in available_searchers()
            config = RunConfig(searcher="thirdparty-test", train_final=False)
            searcher = SearchRunner(config).build_searcher()
            assert isinstance(searcher, RandomSearcher)
        finally:
            unregister_searcher("thirdparty-test")
        assert "thirdparty-test" not in available_searchers()


# ---------------------------------------------------------------------------- protocol
class TestStepwiseProtocol:
    """The satellite property test: for EVERY registered searcher, the stepwise loop
    equals the one-call search, and kill-at-step-k + checkpoint + resume (through a
    2-worker pool where the algorithm evaluates through pools) reproduces the
    uninterrupted SearchResult exactly."""

    @staticmethod
    def _assert_same_result(result, expected):
        assert result.searcher == expected.searcher
        assert result.best_candidate.signature() == expected.best_candidate.signature()
        assert result.best_valid_mrr == expected.best_valid_mrr
        assert result.evaluations == expected.evaluations
        assert np.array_equal(result.best_assignment, expected.best_assignment)

    @pytest.mark.parametrize("name", BUILTIN_SEARCHERS)
    def test_stepwise_loop_matches_one_call_search(self, name, tiny_graph):
        monolithic = create_searcher(name, _tiny_searcher_options()).search(tiny_graph)

        searcher = create_searcher(name, _tiny_searcher_options())
        state = searcher.init_state(tiny_graph)
        assert state.steps_completed == 0 and state.evaluations == 0
        while not searcher.is_complete(state):
            searcher.run_step(state)
        stepwise = searcher.finalize(state)
        self._assert_same_result(stepwise, monolithic)
        assert "budget" not in stepwise.extras

    @pytest.mark.parametrize("workers", [2, 4], ids=["pool2", "pool4"])
    @pytest.mark.parametrize("name", BUILTIN_SEARCHERS)
    def test_kill_and_resume_is_bit_identical(self, name, workers, tiny_graph, tmp_path):
        # The stepwise loop doubles as the uninterrupted reference (its equivalence to
        # one-call search() is proven by test_stepwise_loop_matches_one_call_search).
        total_steps = 0
        probe = create_searcher(name, _tiny_searcher_options())
        probe_state = probe.init_state(tiny_graph)
        while not probe.is_complete(probe_state):
            probe.run_step(probe_state)
            total_steps += 1
        uninterrupted = probe.finalize(probe_state)

        # Kill at step k (mid-search where the schedule allows), checkpoint to JSON...
        kill_at = max(1, total_steps // 2)
        first = create_searcher(name, _tiny_searcher_options())
        state = first.init_state(tiny_graph)
        for _ in range(kill_at):
            first.run_step(state)
        path = tmp_path / f"{name}.json"
        save_search_checkpoint(path, first, state)

        # ... and resume with a FRESH searcher over a shm-backed warm pool of every
        # supported size (pools apply to every algorithm but eras_diff, which accepts
        # and ignores one).
        second = create_searcher(
            name, _tiny_searcher_options(), pool=EvaluationPool(n_workers=workers, cache=EvalCache())
        )
        resumed = load_search_checkpoint(path, second, tiny_graph)
        assert resumed.steps_completed == kill_at
        result = second.drive(resumed)
        self._assert_same_result(result, uninterrupted)

    @pytest.mark.parametrize("name", BUILTIN_SEARCHERS)
    def test_checkpoint_rejects_other_searcher(self, name, tiny_graph, tmp_path):
        searcher = create_searcher(name, _tiny_searcher_options())
        state = searcher.init_state(tiny_graph)
        searcher.run_step(state)
        path = tmp_path / "checkpoint.json"
        save_search_checkpoint(path, searcher, state)
        other_name = "random" if name != "random" else "bayes"
        other = create_searcher(other_name, _tiny_searcher_options())
        with pytest.raises(CheckpointError):
            load_search_checkpoint(path, other, tiny_graph)


# ---------------------------------------------------------------------------- pool matrix
def _strip_wall_clock(obj):
    """Checkpoint envelopes minus wall-clock fields (``*seconds``), recursively.

    Elapsed-time counters are the only legitimately non-deterministic state a searcher
    carries; everything else in the envelope must be bit-identical across pool sizes.
    """
    if isinstance(obj, dict):
        return {key: _strip_wall_clock(value) for key, value in obj.items() if not key.endswith("seconds")}
    if isinstance(obj, list):
        return [_strip_wall_clock(value) for value in obj]
    return obj


@pytest.mark.shm
class TestPoolSizeDeterminismMatrix:
    """The ISSUE's determinism suite: every registered searcher, run serially and over
    shm-backed warm pools of 2 and 4 workers, must produce bit-identical SearchResults;
    mid-search checkpoint envelopes must be bit-identical whenever the runs record the
    same progress, and a pooled run's envelope must always resume (with a fresh serial
    searcher) to the exact reference result."""

    @staticmethod
    def _run_with_checkpoint(name, workers, graph, path):
        pool = EvaluationPool(n_workers=workers, cache=EvalCache())
        searcher = create_searcher(name, _tiny_searcher_options(), pool=pool)
        state = searcher.init_state(graph)
        envelope = None
        progress = None
        while not searcher.is_complete(state):
            searcher.run_step(state)
            if envelope is None:  # checkpoint once, right after the first step
                save_search_checkpoint(path, searcher, state)
                envelope = _strip_wall_clock(json.loads(path.read_text()))
                progress = (state.steps_completed, state.evaluations)
        return searcher.finalize(state), envelope, progress

    @pytest.mark.parametrize("name", BUILTIN_SEARCHERS)
    def test_results_and_envelopes_identical_across_pool_sizes(self, name, tiny_graph, tmp_path):
        reference_result, reference_envelope, reference_progress = self._run_with_checkpoint(
            name, 1, tiny_graph, tmp_path / f"{name}-serial.json"
        )
        assert reference_envelope is not None
        for workers in (2, 4):
            path = tmp_path / f"{name}-pool{workers}.json"
            result, envelope, progress = self._run_with_checkpoint(name, workers, tiny_graph, path)
            assert result.best_candidate.signature() == reference_result.best_candidate.signature()
            assert result.best_valid_mrr == reference_result.best_valid_mrr
            assert result.evaluations == reference_result.evaluations
            assert np.array_equal(result.best_assignment, reference_result.best_assignment)
            assert [point.note for point in result.trace] == [point.note for point in reference_result.trace]
            if progress == reference_progress:
                # Same step granularity (the eras family steps by epoch regardless of
                # pool size): the envelopes must be bit-identical.
                assert envelope == reference_envelope, (
                    f"{name} checkpoint envelope diverges between serial and {workers}-worker runs"
                )
            # Searchers that batch candidates per worker (random/autosf/bayes) reach
            # different step boundaries per pool size, so their envelopes are compared
            # through semantics instead: the pooled checkpoint, resumed with a FRESH
            # serial searcher, must land on the exact same result.
            resumer = create_searcher(name, _tiny_searcher_options())
            resumed = load_search_checkpoint(path, resumer, tiny_graph)
            resumed_result = resumer.drive(resumed)
            assert resumed_result.best_candidate.signature() == reference_result.best_candidate.signature()
            assert resumed_result.best_valid_mrr == reference_result.best_valid_mrr
            assert resumed_result.evaluations == reference_result.evaluations


# ---------------------------------------------------------------------------- budgets
class TestSearchBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchBudget(max_steps=0)
        with pytest.raises(ValueError):
            SearchBudget(max_evaluations=0)
        with pytest.raises(ValueError):
            SearchBudget(max_seconds=0.0)

    def test_max_steps_stops_after_k_steps(self, tiny_graph):
        searcher = create_searcher("eras", _tiny_searcher_options())
        result = searcher.search(tiny_graph, budget=SearchBudget(max_steps=1))
        budget = result.extras["budget"]
        assert budget["steps_completed"] == 1
        assert "step budget" in budget["stopped"]
        assert len([p for p in result.trace if p.note.startswith("epoch")]) == 1

    def test_max_evaluations_stops_early(self, tiny_graph):
        searcher = create_searcher("random", _tiny_searcher_options())
        result = searcher.search(tiny_graph, budget=SearchBudget(max_evaluations=1))
        assert result.evaluations == 1
        assert "evaluation budget" in result.extras["budget"]["stopped"]

    def test_max_seconds_still_runs_first_step(self, tiny_graph):
        searcher = create_searcher("bayes", _tiny_searcher_options())
        result = searcher.search(tiny_graph, budget=SearchBudget(max_seconds=1e-9))
        assert "wall-clock budget" in result.extras["budget"]["stopped"]
        assert result.extras["budget"]["steps_completed"] == 1
        assert result.evaluations >= 1


# ---------------------------------------------------------------------------- runner
def _tiny_run_config(**overrides) -> RunConfig:
    defaults = dict(
        dataset="wn18rr_like",
        scale=0.4,
        searcher="eras",
        search_epochs=2,
        derive_samples=6,
        dim=16,
        train_epochs=4,
        rerank=False,
        seed=0,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestSearchRunner:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(searcher="gradient-descent")
        with pytest.raises(ValueError):
            RunConfig(eval_split="train")
        with pytest.raises(ValueError):
            RunConfig(workers=-2)

    def test_full_pipeline_publishes_artifact(self, tmp_path):
        config = _tiny_run_config(registry_root=str(tmp_path / "registry"), model_name="pipeline-test")
        report = SearchRunner(config).run()
        assert report.training is not None and report.metrics is not None
        assert report.artifact is not None and report.artifact.version == 1
        summary = report.summary()
        assert summary["artifact"] == "pipeline-test/v1"
        assert 0.0 <= summary["test_MRR"] <= 1.0

        from repro.serve.artifacts import ModelArtifactRegistry

        registry = ModelArtifactRegistry(tmp_path / "registry")
        model, manifest = registry.load("pipeline-test")
        # Metadata records the producing algorithm (the SearchResult's name).
        assert manifest["metadata"]["searcher"] == "ERAS"
        assert model.num_relations == SearchRunner(config).graph.num_relations

    def test_search_only_skips_training(self):
        report = SearchRunner(_tiny_run_config(train_final=False)).run()
        assert report.training is None and report.metrics is None and report.artifact is None

    def test_checkpointed_run_resumes_to_identical_result(self, tmp_path):
        checkpoint = tmp_path / "search.json"
        config = _tiny_run_config(train_final=False, checkpoint_path=str(checkpoint))
        first = SearchRunner(config).run().search_result
        assert checkpoint.exists()
        # A second run finds the completed checkpoint, skips the epochs and re-derives.
        second = SearchRunner(config).run().search_result
        assert second.best_candidate.signature() == first.best_candidate.signature()
        assert second.best_valid_mrr == first.best_valid_mrr

    def test_checkpoint_path_supported_for_non_eras_searchers(self, tmp_path):
        """The old runner warned and DROPPED --checkpoint for non-ERAS searchers; now
        every registered algorithm checkpoints through the same protocol envelope."""
        checkpoint = tmp_path / "random-search.json"
        config = _tiny_run_config(
            searcher="random",
            num_candidates=3,
            proxy_epochs=2,
            train_final=False,
            checkpoint_path=str(checkpoint),
        )
        first = SearchRunner(config).run().search_result
        assert checkpoint.exists()
        second = SearchRunner(config).run().search_result
        assert second.best_candidate.signature() == first.best_candidate.signature()
        assert second.best_valid_mrr == first.best_valid_mrr
        assert second.evaluations == first.evaluations

    def test_runner_enforces_budget(self):
        config = _tiny_run_config(train_final=False, search_epochs=3, budget_steps=1)
        result = SearchRunner(config).run().search_result
        assert result.extras["budget"]["steps_completed"] == 1
        with pytest.raises(ValueError):
            _tiny_run_config(budget_steps=0)


# ---------------------------------------------------------------------------- CLI
class TestCLI:
    def test_no_command_prints_help(self, capsys):
        from repro.runtime.cli import main

        assert main([]) == 1
        assert "search" in capsys.readouterr().out

    def test_search_command_writes_output(self, tmp_path, capsys):
        from repro.runtime.cli import main

        output = tmp_path / "result.json"
        code = main(
            [
                "search",
                "--dataset", "wn18rr_like",
                "--scale", "0.4",
                "--epochs", "1",
                "--dim", "16",
                "--derive-samples", "4",
                "--output", str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["searcher"] == "ERAS"
        assert "winning candidate" in capsys.readouterr().out

    def test_subcommand_parsers_exposed(self):
        from repro.runtime.cli import subcommand_parsers

        assert set(subcommand_parsers()) == {"search", "sweep", "train", "serve", "bench"}

    def test_list_searchers_prints_registry(self, capsys):
        from repro.runtime.cli import main

        assert main(["search", "--list-searchers"]) == 0
        printed = capsys.readouterr().out.split()
        assert set(printed) == set(BUILTIN_SEARCHERS)

    def test_search_parser_accepts_registry_names_and_budgets(self):
        from repro.runtime.cli import build_parser

        args = build_parser().parse_args(
            [
                "search",
                "--searcher", "eras_diff",
                "--budget-steps", "2",
                "--budget-evals", "5",
                "--budget-seconds", "1.5",
                "--proxy-epochs", "2",
            ]
        )
        assert args.searcher == "eras_diff"
        assert (args.budget_steps, args.budget_evals, args.budget_seconds) == (2, 5, 1.5)
        assert args.proxy_epochs == 2

    def test_search_publish_requires_registry(self, capsys):
        from repro.runtime.cli import main

        assert main(["search", "--publish", "model-name"]) == 2
        assert "--publish requires --registry" in capsys.readouterr().err

    def test_train_from_result_rejects_dataset_mismatch(self, tmp_path, capsys):
        from repro.runtime.cli import main
        from repro.scoring.structure import BlockStructure
        from repro.search.result import Candidate, SearchResult

        result = SearchResult(
            searcher="ERAS",
            dataset="fb15k_like",
            best_candidate=Candidate((BlockStructure.diagonal(4),)),
            best_assignment=np.zeros(3, dtype=np.int64),
            best_valid_mrr=0.1,
            search_seconds=1.0,
            evaluations=1,
        )
        path = tmp_path / "result.json"
        save_search_result(result, path)
        # The default --dataset is wn18rr_like, which does not match the result.
        assert main(["train", "--from-result", str(path)]) == 2
        assert "fb15k_like" in capsys.readouterr().err
