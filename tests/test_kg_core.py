"""Tests for the KG data layer: vocabularies, triple sets and the graph container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kg import KnowledgeGraph, TripleSet, Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        vocab = Vocabulary()
        assert vocab.add("alice") == 0
        assert vocab.add("bob") == 1
        assert vocab.add("alice") == 0
        assert vocab.id_of("bob") == 1
        assert vocab.symbol_of(0) == "alice"
        assert "alice" in vocab and "carol" not in vocab

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("missing")

    def test_out_of_range_id_raises(self):
        with pytest.raises(IndexError):
            Vocabulary(["a"]).symbol_of(5)

    def test_from_ids(self):
        vocab = Vocabulary.from_ids(3, "e")
        assert vocab.symbols() == ["e_0", "e_1", "e_2"]
        assert len(vocab) == 3

    def test_iteration_order_is_insertion_order(self):
        vocab = Vocabulary(["z", "a", "m"])
        assert list(vocab) == ["z", "a", "m"]

    def test_to_dict(self):
        assert Vocabulary(["x", "y"]).to_dict() == {"x": 0, "y": 1}


class TestTripleSet:
    def test_construction_and_columns(self):
        triples = TripleSet([(0, 1, 2), (3, 0, 1)])
        assert len(triples) == 2
        np.testing.assert_array_equal(triples.heads, [0, 3])
        np.testing.assert_array_equal(triples.relations, [1, 0])
        np.testing.assert_array_equal(triples.tails, [2, 1])

    def test_empty_set(self):
        empty = TripleSet.empty()
        assert len(empty) == 0
        assert empty.entities().size == 0

    def test_rejects_bad_shapes_and_negative_ids(self):
        with pytest.raises(ValueError):
            TripleSet(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            TripleSet([(-1, 0, 1)])

    def test_array_is_read_only(self):
        triples = TripleSet([(0, 0, 1)])
        with pytest.raises(ValueError):
            triples.array[0, 0] = 5

    def test_contains_and_equality(self):
        first = TripleSet([(0, 1, 2), (2, 1, 0)])
        second = TripleSet([(2, 1, 0), (0, 1, 2)])
        assert (0, 1, 2) in first
        assert first == second

    def test_for_relation_filters(self):
        triples = TripleSet([(0, 0, 1), (1, 1, 2), (2, 0, 3)])
        subset = triples.for_relation(0)
        assert len(subset) == 2
        assert set(subset.relations) == {0}

    def test_for_relations_multiple(self):
        triples = TripleSet([(0, 0, 1), (1, 1, 2), (2, 2, 3)])
        assert len(triples.for_relations([0, 2])) == 2

    def test_relation_counts(self):
        triples = TripleSet([(0, 0, 1), (1, 0, 2), (2, 1, 3)])
        np.testing.assert_array_equal(triples.relation_counts(3), [2, 1, 0])

    def test_concat_unique_difference(self):
        first = TripleSet([(0, 0, 1)])
        second = TripleSet([(0, 0, 1), (1, 0, 2)])
        combined = first.concat(second)
        assert len(combined) == 3
        assert len(combined.unique()) == 2
        assert len(second.difference(first)) == 1

    def test_inverted_swaps_head_and_tail(self):
        triples = TripleSet([(0, 5, 9)])
        assert list(triples.inverted()) == [(9, 5, 0)]

    def test_split_fractions(self, rng):
        triples = TripleSet([(i, 0, i + 1) for i in range(20)])
        train, valid, test = triples.split([0.8, 0.1, 0.1], rng)
        assert len(train) + len(valid) + len(test) == 20
        assert len(train) == 16

    def test_split_rejects_bad_fractions(self, rng):
        with pytest.raises(ValueError):
            TripleSet([(0, 0, 1)]).split([0.5, 0.2], rng)

    def test_indexing_returns_tripleset(self):
        triples = TripleSet([(0, 0, 1), (1, 0, 2)])
        assert isinstance(triples[0], TripleSet)
        assert len(triples[:1]) == 1


@settings(max_examples=25, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_property_unique_is_idempotent_and_bounded(count, seed):
    rng = np.random.default_rng(seed)
    array = rng.integers(0, 5, size=(count, 3))
    triples = TripleSet(array)
    unique_once = triples.unique()
    assert len(unique_once) <= len(triples)
    assert unique_once == unique_once.unique()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_property_inverted_twice_is_identity(seed):
    rng = np.random.default_rng(seed)
    triples = TripleSet(rng.integers(0, 8, size=(12, 3)))
    assert triples.inverted().inverted() == triples


class TestKnowledgeGraph:
    def _graph(self):
        train = TripleSet([(0, 0, 1), (1, 1, 2), (2, 0, 3)])
        valid = TripleSet([(3, 1, 0)])
        test = TripleSet([(1, 0, 3)])
        return KnowledgeGraph("toy", 4, 2, train, valid, test)

    def test_statistics(self):
        stats = self._graph().statistics()
        assert stats.num_training == 3
        assert stats.num_validation == 1
        assert stats.num_testing == 1
        assert stats.as_row()["#entity"] == 4

    def test_all_triples_unions_splits(self):
        assert len(self._graph().all_triples()) == 5

    def test_relation_frequencies(self):
        np.testing.assert_array_equal(self._graph().relation_frequencies(), [2, 1])

    def test_id_validation(self):
        with pytest.raises(ValueError):
            KnowledgeGraph("bad", 2, 2, TripleSet([(0, 0, 5)]), TripleSet.empty(), TripleSet.empty())
        with pytest.raises(ValueError):
            KnowledgeGraph("bad", 10, 1, TripleSet([(0, 3, 1)]), TripleSet.empty(), TripleSet.empty())

    def test_subsample_reduces_training(self, rng):
        graph = self._graph()
        smaller = graph.subsample(0.5, rng)
        assert len(smaller.train) < len(graph.train)
        assert len(smaller.valid) == len(graph.valid)
        with pytest.raises(ValueError):
            graph.subsample(0.0, rng)
