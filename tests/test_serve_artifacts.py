"""Tests for the model artifact registry: round-trips, vocab remapping, corruption."""

import json

import numpy as np
import pytest

from repro.kg import Vocabulary
from repro.models import KGEModel
from repro.scoring import TransEScorer, named_structure
from repro.serve import (
    ArtifactError,
    ModelArtifactRegistry,
    load_model_artifact,
    save_model_artifact,
)
from repro.serve.artifacts import manifest_vocabularies
from repro.utils.serialization import load_npz, save_npz


def _model(graph, scorers=None, assignment=None, seed=0, dim=16):
    return KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=dim,
        scorers=scorers or named_structure("distmult"),
        assignment=assignment,
        seed=seed,
    )


class TestNpzHelpers:
    def test_round_trip(self, tmp_path):
        arrays = {"a.b": np.arange(6, dtype=np.float64).reshape(2, 3), "c": np.array([1, 2])}
        path = save_npz(arrays, tmp_path / "sub" / "arrays.npz")
        loaded = load_npz(path)
        assert set(loaded) == {"a.b", "c"}
        np.testing.assert_array_equal(loaded["a.b"], arrays["a.b"])
        np.testing.assert_array_equal(loaded["c"], arrays["c"])

    def test_object_arrays_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_npz({"bad": np.array([object()])}, tmp_path / "arrays.npz")


class TestArtifactRoundTrip:
    def test_identical_scores_after_reload(self, tiny_graph, trained_tiny_model, tmp_path):
        batch = tiny_graph.test.array[:16]
        expected = trained_tiny_model.score_triples(batch).data
        save_model_artifact(trained_tiny_model, tmp_path / "artifact")
        reloaded, manifest = load_model_artifact(tmp_path / "artifact")
        np.testing.assert_array_equal(reloaded.score_triples(batch).data, expected)
        assert manifest["model"]["num_entities"] == tiny_graph.num_entities
        assert manifest["scorers"][0]["type"] == "block"

    def test_relation_aware_model_round_trip(self, tiny_graph, rng, tmp_path):
        structures = [named_structure("distmult"), named_structure("complex")]
        assignment = rng.integers(0, 2, size=tiny_graph.num_relations)
        model = _model(tiny_graph, scorers=structures, assignment=assignment)
        batch = tiny_graph.train.array[:20]
        expected = model.score_triples(batch).data

        reloaded, _ = load_model_artifact(save_model_artifact(model, tmp_path / "ra"))
        np.testing.assert_array_equal(reloaded.assignment, model.assignment)
        assert reloaded.num_groups == 2
        np.testing.assert_array_equal(reloaded.score_triples(batch).data, expected)

    def test_translational_scorer_round_trip(self, tiny_graph, tmp_path):
        model = _model(tiny_graph, scorers=TransEScorer(norm=2))
        batch = tiny_graph.train.array[:10]
        expected = model.score_triples(batch).data
        reloaded, manifest = load_model_artifact(save_model_artifact(model, tmp_path / "te"))
        assert manifest["scorers"][0] == {"type": "transe", "norm": 2}
        np.testing.assert_array_equal(reloaded.score_triples(batch).data, expected)

    def test_model_save_load_entry_points(self, tiny_graph, trained_tiny_model, tmp_path):
        batch = tiny_graph.valid.array[:8]
        trained_tiny_model.save(tmp_path / "direct")
        reloaded = KGEModel.load(tmp_path / "direct")
        np.testing.assert_array_equal(
            reloaded.score_triples(batch).data, trained_tiny_model.score_triples(batch).data
        )

    def test_vocab_remapping_round_trip(self, tiny_graph, tmp_path):
        # Insertion order defines ids; a reloaded vocabulary must map every symbol to
        # its original id even though only the symbol list is stored.
        entity_vocab = Vocabulary(f"entity/{i * 7 % tiny_graph.num_entities}" for i in range(tiny_graph.num_entities))
        relation_vocab = Vocabulary(f"rel:{chr(ord('z') - i)}" for i in range(tiny_graph.num_relations))
        model = _model(tiny_graph)
        save_model_artifact(
            model, tmp_path / "vocab", entity_vocab=entity_vocab, relation_vocab=relation_vocab,
            metadata={"dataset": tiny_graph.name},
        )
        _, manifest = load_model_artifact(tmp_path / "vocab")
        loaded_entities, loaded_relations = manifest_vocabularies(manifest)
        for symbol in entity_vocab:
            assert loaded_entities.id_of(symbol) == entity_vocab.id_of(symbol)
        for symbol in relation_vocab:
            assert loaded_relations.id_of(symbol) == relation_vocab.id_of(symbol)
        assert manifest["metadata"]["dataset"] == tiny_graph.name

    def test_mismatched_vocab_sizes_rejected_at_save_time(self, tiny_graph, tmp_path):
        short_vocab = Vocabulary.from_ids(tiny_graph.num_entities - 1, "entity")
        with pytest.raises(ArtifactError, match="entity vocabulary"):
            save_model_artifact(_model(tiny_graph), tmp_path / "bad", entity_vocab=short_vocab)
        long_relations = Vocabulary.from_ids(tiny_graph.num_relations + 2, "rel")
        with pytest.raises(ArtifactError, match="relation vocabulary"):
            save_model_artifact(_model(tiny_graph), tmp_path / "bad", relation_vocab=long_relations)

    def test_vocabs_default_to_none(self, tiny_graph, tmp_path):
        save_model_artifact(_model(tiny_graph), tmp_path / "plain")
        _, manifest = load_model_artifact(tmp_path / "plain")
        assert manifest_vocabularies(manifest) == (None, None)


class TestCorruptionHandling:
    @pytest.fixture()
    def artifact_dir(self, tiny_graph, tmp_path):
        return save_model_artifact(_model(tiny_graph), tmp_path / "artifact")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError, match="no manifest"):
            load_model_artifact(tmp_path / "nowhere")

    def test_missing_weights(self, artifact_dir):
        (artifact_dir / "weights.npz").unlink()
        with pytest.raises(ArtifactError, match="no weights"):
            load_model_artifact(artifact_dir)

    def test_invalid_json_manifest(self, artifact_dir):
        (artifact_dir / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_model_artifact(artifact_dir)

    def test_non_object_manifest(self, artifact_dir):
        (artifact_dir / "manifest.json").write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ArtifactError, match="JSON object"):
            load_model_artifact(artifact_dir)

    def test_wrong_format_version(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text(encoding="utf-8"))
        manifest["format_version"] = 999
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError, match="format version"):
            load_model_artifact(artifact_dir)

    @pytest.mark.parametrize("field", ["model", "scorers", "weights_checksum"])
    def test_missing_required_field(self, artifact_dir, field):
        manifest = json.loads((artifact_dir / "manifest.json").read_text(encoding="utf-8"))
        del manifest[field]
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError, match=f"missing the '{field}'"):
            load_model_artifact(artifact_dir)

    def test_tampered_weights_fail_checksum(self, artifact_dir):
        payload = (artifact_dir / "weights.npz").read_bytes()
        (artifact_dir / "weights.npz").write_bytes(payload[:-1] + bytes([payload[-1] ^ 0xFF]))
        with pytest.raises(ArtifactError, match="integrity"):
            load_model_artifact(artifact_dir)

    def test_checksum_verification_can_be_skipped(self, tiny_graph, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text(encoding="utf-8"))
        manifest["weights_checksum"] = "0" * 64
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        model, _ = load_model_artifact(artifact_dir, verify_checksum=False)
        assert model.num_entities == tiny_graph.num_entities

    def test_inconsistent_shape_rejected(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text(encoding="utf-8"))
        manifest["model"]["dim"] = 8  # real weights were saved with dim=16
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError, match="inconsistent"):
            load_model_artifact(artifact_dir, verify_checksum=False)

    def test_unknown_scorer_type(self, artifact_dir):
        manifest = json.loads((artifact_dir / "manifest.json").read_text(encoding="utf-8"))
        manifest["scorers"] = [{"type": "quantum"}]
        (artifact_dir / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ArtifactError, match="unknown scoring function"):
            load_model_artifact(artifact_dir, verify_checksum=False)


class TestRegistry:
    def test_versioning_and_latest(self, tiny_graph, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        first = _model(tiny_graph, seed=1)
        second = _model(tiny_graph, seed=2)
        ref1 = registry.save("wn18rr", first)
        ref2 = registry.save("wn18rr", second)
        assert (ref1.version, ref2.version) == (1, 2)
        assert registry.versions("wn18rr") == [1, 2]
        assert registry.models() == ["wn18rr"]

        batch = tiny_graph.train.array[:12]
        latest, _ = registry.load("wn18rr")
        np.testing.assert_array_equal(latest.score_triples(batch).data, second.score_triples(batch).data)
        pinned, _ = registry.load("wn18rr", version=1)
        np.testing.assert_array_equal(pinned.score_triples(batch).data, first.score_triples(batch).data)

    def test_manifest_inspection_and_metadata(self, tiny_graph, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", _model(tiny_graph), metadata={"mrr": 0.42})
        manifest = registry.manifest("m")
        assert manifest["metadata"]["mrr"] == 0.42
        assert manifest["model"]["dim"] == 16

    def test_unknown_name_and_version(self, tiny_graph, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        with pytest.raises(ArtifactError, match="no artifact named"):
            registry.load("ghost")
        registry.save("m", _model(tiny_graph))
        with pytest.raises(ArtifactError, match="no version 7"):
            registry.load("m", version=7)

    def test_invalid_names_rejected(self, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        for name in ("", "a/b", "..", "a\\b", ".", ".hidden"):
            with pytest.raises(ArtifactError, match="invalid artifact name"):
                registry.resolve(name)

    def test_interrupted_save_debris_never_resolves_as_latest(self, tiny_graph, tmp_path):
        """A version directory without a manifest (crash mid-save) must be skipped."""
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", _model(tiny_graph, seed=1))
        debris = tmp_path / "registry" / "m" / "v2"
        debris.mkdir()
        (debris / "weights.npz").write_bytes(b"half-written")
        assert registry.versions("m") == [1]
        assert registry.resolve("m").version == 1
        model, _ = registry.load("m")
        assert model.num_entities == tiny_graph.num_entities
        # The next save must not collide with the debris directory.
        ref = registry.save("m", _model(tiny_graph, seed=2))
        assert ref.version == 3
        assert registry.versions("m") == [1, 3]

    def test_delete_version(self, tiny_graph, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", _model(tiny_graph, seed=1))
        registry.save("m", _model(tiny_graph, seed=2))
        registry.delete("m", 1)
        assert registry.versions("m") == [2]
        # Deleting every version removes the model from the catalogue.
        registry.delete("m", 2)
        assert registry.models() == []


def _dead_pid():
    """The pid of a process that definitely just exited."""
    import subprocess
    import sys

    process = subprocess.Popen([sys.executable, "-c", "pass"])
    process.wait()
    return process.pid


class TestCrashedWriterTolerance:
    def _scratch(self, registry, name, version, pid, tiny_graph):
        """A fully-written artifact stuck in its pre-rename scratch directory."""
        scratch = registry.root / name / f".tmp-v{version}-{pid}"
        save_model_artifact(_model(tiny_graph), scratch)
        return scratch

    def test_readers_skip_stale_scratch_dirs(self, tiny_graph, tmp_path):
        """A crashed writer's scratch dir holds a *complete* artifact (manifest and
        all) -- only the scratch naming pattern identifies it as not-yet-published."""
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", _model(tiny_graph, seed=1))
        self._scratch(registry, "m", 5, _dead_pid(), tiny_graph)
        assert registry.versions("m") == [1]
        assert registry.resolve("m").version == 1
        assert registry.load("m")[0].num_entities == tiny_graph.num_entities
        # version allocation ignores the scratch dir's target version too
        assert registry.save("m", _model(tiny_graph, seed=2)).version == 2

    def test_prune_scratch_removes_only_dead_writers(self, tiny_graph, tmp_path):
        import os

        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("m", _model(tiny_graph, seed=1))
        dead = self._scratch(registry, "m", 7, _dead_pid(), tiny_graph)
        own = self._scratch(registry, "m", 8, os.getpid(), tiny_graph)  # in-progress save
        removed = registry.prune_scratch("m")
        assert removed == [dead]
        assert not dead.exists()
        assert own.exists()  # a live writer's scratch dir must never be reclaimed
        assert registry.versions("m") == [1]

    def test_prune_scratch_sweeps_every_model_without_name(self, tiny_graph, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("a", _model(tiny_graph, seed=1))
        registry.save("b", _model(tiny_graph, seed=2))
        pid = _dead_pid()
        first = self._scratch(registry, "a", 3, pid, tiny_graph)
        second = self._scratch(registry, "b", 9, pid, tiny_graph)
        assert registry.prune_scratch() == sorted([first, second])
        assert registry.prune_scratch() == []  # idempotent

    def test_prune_scratch_ignores_unknown_and_empty(self, tmp_path):
        registry = ModelArtifactRegistry(tmp_path / "registry")
        assert registry.prune_scratch() == []
        with pytest.raises(ArtifactError, match="invalid artifact name"):
            registry.prune_scratch("../evil")
