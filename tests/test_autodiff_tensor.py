"""Unit and property-based tests for the autodiff Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, no_grad
from repro.autodiff.tensor import concat, stack


def _random_tensor(rng, shape, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasics:
    def test_shape_and_size(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad

    def test_backward_requires_grad(self):
        tensor = Tensor([1.0])
        with pytest.raises(RuntimeError):
            tensor.backward()

    def test_backward_seed_shape_mismatch(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            tensor.backward(np.ones(3))

    def test_no_grad_disables_graph(self):
        with no_grad():
            tensor = Tensor([1.0, 2.0], requires_grad=True)
            result = tensor * 2.0
        assert not result.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))


class TestArithmeticGradients:
    def test_add_mul_chain(self, rng):
        a = _random_tensor(rng, (3, 4))
        b = _random_tensor(rng, (3, 4))
        check_gradients(lambda inputs: ((inputs[0] + inputs[1]) * inputs[0]).sum(), [a, b])

    def test_broadcast_add(self, rng):
        a = _random_tensor(rng, (3, 4))
        b = _random_tensor(rng, (4,))
        check_gradients(lambda inputs: (inputs[0] + inputs[1]).sum(), [a, b])

    def test_broadcast_mul_row_vector(self, rng):
        a = _random_tensor(rng, (2, 5))
        b = _random_tensor(rng, (1, 5))
        check_gradients(lambda inputs: (inputs[0] * inputs[1]).sum(), [a, b])

    def test_division(self, rng):
        a = _random_tensor(rng, (3,))
        b = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda inputs: (inputs[0] / inputs[1]).sum(), [a, b])

    def test_power(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda inputs: (inputs[0] ** 3).sum(), [a])

    def test_negation_and_subtraction(self, rng):
        a = _random_tensor(rng, (2, 3))
        b = _random_tensor(rng, (2, 3))
        check_gradients(lambda inputs: (inputs[0] - inputs[1]).sum(), [a, b])

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        out = (1.0 - a) + (8.0 / a)
        out.sum().backward()
        assert a.grad is not None

    def test_matmul_2d(self, rng):
        a = _random_tensor(rng, (3, 4))
        b = _random_tensor(rng, (4, 2))
        check_gradients(lambda inputs: (inputs[0] @ inputs[1]).sum(), [a, b])

    def test_matmul_vector_cases(self, rng):
        a = _random_tensor(rng, (4,))
        b = _random_tensor(rng, (4, 3))
        check_gradients(lambda inputs: (inputs[0] @ inputs[1]).sum(), [a, b])
        c = _random_tensor(rng, (3, 4))
        d = _random_tensor(rng, (4,))
        check_gradients(lambda inputs: (inputs[0] @ inputs[1]).sum(), [c, d])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = _random_tensor(rng, (3, 4))
        check_gradients(lambda inputs: inputs[0].sum(axis=0, keepdims=True).sum(), [a])
        check_gradients(lambda inputs: inputs[0].sum(axis=1).sum(), [a])

    def test_mean(self, rng):
        a = _random_tensor(rng, (5, 2))
        check_gradients(lambda inputs: inputs[0].mean(), [a])
        check_gradients(lambda inputs: inputs[0].mean(axis=0).sum(), [a])

    def test_max_forward(self):
        tensor = Tensor([[1.0, 5.0], [7.0, 2.0]])
        assert tensor.max().item() == pytest.approx(7.0)
        np.testing.assert_allclose(tensor.max(axis=1).data, [5.0, 7.0])

    def test_reshape_roundtrip_gradient(self, rng):
        a = _random_tensor(rng, (2, 6))
        check_gradients(lambda inputs: inputs[0].reshape(3, 4).sum(), [a])

    def test_transpose_gradient(self, rng):
        a = _random_tensor(rng, (2, 3))
        check_gradients(lambda inputs: (inputs[0].T @ inputs[0]).sum(), [a])

    def test_getitem_rows(self, rng):
        a = _random_tensor(rng, (5, 3))
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda inputs: inputs[0][idx].sum(), [a])

    def test_getitem_accumulates_duplicates(self):
        a = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = a[np.array([1, 1, 1])].sum()
        out.backward()
        np.testing.assert_allclose(a.grad[1], [3.0, 3.0])

    def test_concat_and_stack(self, rng):
        a = _random_tensor(rng, (2, 3))
        b = _random_tensor(rng, (2, 3))
        check_gradients(lambda inputs: concat([inputs[0], inputs[1]], axis=0).sum(), [a, b])
        check_gradients(lambda inputs: stack([inputs[0], inputs[1]], axis=0).sum(), [a, b])


class TestElementwiseGradients:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu", "abs"])
    def test_unary_ops(self, rng, op):
        a = _random_tensor(rng, (3, 3))
        check_gradients(lambda inputs: getattr(inputs[0], op)().sum(), [a])

    def test_log_gradient(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda inputs: inputs[0].log().sum(), [a])

    def test_clip_gradient_masks_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda inputs: inputs[0].sqrt().sum(), [a])


class TestGradientAccumulation:
    def test_reused_tensor_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a * 2.0).sum() + (a * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [5.0, 5.0])

    def test_zero_grad_clears(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_sum_of_product_matches_numpy(rows, cols, seed):
    """Forward values always agree with NumPy regardless of shape."""
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(rows, cols))
    b_data = rng.normal(size=(rows, cols))
    result = (Tensor(a_data) * Tensor(b_data)).sum()
    assert np.isclose(result.data, (a_data * b_data).sum())


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_linear_gradient_is_exact(seed):
    """d(sum(w*x))/dw equals x exactly for any x."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 3))
    w = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
    (w * Tensor(x)).sum().backward()
    np.testing.assert_allclose(w.grad, x)
