"""Tests for the block-structure representation and the operation set."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scoring import BlockStructure, OperationSet
from repro.scoring.structure import structures_equal


class TestOperationSet:
    def test_size(self):
        assert OperationSet(4).size == 9
        assert OperationSet(3).size == 7

    def test_token_value_roundtrip_explicit(self):
        ops = OperationSet(4)
        assert ops.token_to_value(0) == 0
        assert ops.token_to_value(1) == 1
        assert ops.token_to_value(4) == 4
        assert ops.token_to_value(5) == -1
        assert ops.token_to_value(8) == -4
        assert ops.value_to_token(-3) == 7

    def test_out_of_range(self):
        ops = OperationSet(3)
        with pytest.raises(ValueError):
            ops.token_to_value(7)
        with pytest.raises(ValueError):
            ops.value_to_token(4)

    def test_describe(self):
        ops = OperationSet(2)
        assert ops.all_descriptions() == ["0", "+r1", "+r2", "-r1", "-r2"]

    def test_invalid_num_blocks(self):
        with pytest.raises(ValueError):
            OperationSet(0)

    @settings(max_examples=50, deadline=None)
    @given(num_blocks=st.integers(min_value=1, max_value=6), token=st.integers(min_value=0, max_value=12))
    def test_property_roundtrip(self, num_blocks, token):
        ops = OperationSet(num_blocks)
        if token >= ops.size:
            return
        assert ops.value_to_token(ops.token_to_value(token)) == token


class TestBlockStructure:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockStructure(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            BlockStructure([[5, 0], [0, 0]])

    def test_diagonal_is_distmult_like(self):
        structure = BlockStructure.diagonal(4)
        assert structure.nonzero_count() == 4
        assert structure.uses_all_relation_blocks()
        assert structure.nonzero_items() == [(0, 0, 1), (1, 1, 2), (2, 2, 3), (3, 3, 4)]

    def test_token_roundtrip(self):
        structure = BlockStructure([[1, -2], [0, 2]])
        tokens = structure.to_tokens()
        assert BlockStructure.from_tokens(tokens, 2) == structure

    def test_from_tokens_validates_length(self):
        with pytest.raises(ValueError):
            BlockStructure.from_tokens([0, 1, 2], 2)

    def test_transposed_and_negated(self):
        structure = BlockStructure([[1, -2], [0, 2]])
        assert structure.transposed().entries[1, 0] == -2
        assert structure.negated().entries[0, 0] == -1

    def test_with_item_and_free_positions(self):
        structure = BlockStructure.zeros(2)
        assert len(structure.free_positions()) == 4
        updated = structure.with_item(0, 1, -2)
        assert updated.entries[0, 1] == -2
        assert len(updated.free_positions()) == 3
        with pytest.raises(IndexError):
            structure.with_item(5, 0, 1)
        with pytest.raises(ValueError):
            structure.with_item(0, 0, 9)

    def test_equality_and_hash(self):
        first = BlockStructure.diagonal(3)
        second = BlockStructure.diagonal(3)
        assert first == second
        assert hash(first) == hash(second)
        assert first != BlockStructure.zeros(3)
        assert structures_equal([first], [second])
        assert not structures_equal([first], [first, second])

    def test_entries_read_only(self):
        structure = BlockStructure.diagonal(2)
        with pytest.raises(ValueError):
            structure.entries[0, 0] = 0

    def test_used_relation_blocks(self):
        structure = BlockStructure([[1, 0], [0, -1]])
        assert structure.used_relation_blocks() == {1}
        assert not structure.uses_all_relation_blocks()

    def test_random_respects_exploitative_constraint(self, rng):
        for _ in range(10):
            structure = BlockStructure.random(4, rng)
            assert structure.uses_all_relation_blocks()

    def test_random_without_constraint(self, rng):
        structure = BlockStructure.random(3, rng, nonzero_fraction=0.2, require_all_blocks=False)
        assert structure.nonzero_count() >= 1

    @settings(max_examples=40, deadline=None)
    @given(
        num_blocks=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_token_roundtrip_random(self, num_blocks, seed):
        rng = np.random.default_rng(seed)
        structure = BlockStructure.random(num_blocks, rng, require_all_blocks=False)
        assert BlockStructure.from_tokens(structure.to_tokens(), num_blocks) == structure

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_transpose_is_involution(self, seed):
        rng = np.random.default_rng(seed)
        structure = BlockStructure.random(4, rng, require_all_blocks=False)
        assert structure.transposed().transposed() == structure
