"""Out-of-core dataset layer: binary cache, unified resolution, chunked scoring, mmap.

Covers the scale-oriented guarantees documented in ``docs/DATASETS.md``:

- the binary cache round-trips a TSV directory exactly and is invalidated by any edit
  to the split files (content digest, never mtime);
- :func:`repro.datasets.resolve_dataset` accepts registry names and directories
  through one entry point, refuses ambiguous and unknown specs loudly, and memoises
  directory loads per content digest;
- chunked entity scoring (:meth:`KGEModel.score_chunk_entities`, the chunked
  :class:`RankingEvaluator`, the streamed serving engine) is *bit-identical* to the
  unchunked path on randomized graphs -- equality is exact, not approximate -- while
  bounding peak evaluation memory;
- mmap-loaded artifacts score bit-identically to in-memory loads.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARK_NAMES,
    DatasetResolutionError,
    check_dataset_spec,
    dataset_label,
    is_directory_spec,
    load_benchmark,
    resolve_dataset,
)
from repro.eval import RankingEvaluator
from repro.kg import KnowledgeGraph, TripleSet, load_tsv_dataset, save_tsv_dataset
from repro.kg.cache import (
    cache_path,
    dataset_digest,
    load_cached_dataset,
    load_dataset_directory,
    write_dataset_cache,
)
from repro.models import KGEModel
from repro.scoring import BlockStructure
from repro.scoring.kernels import ENTITY_TILE, normalize_chunk_size
from repro.serve import (
    LinkPredictionEngine,
    LinkQuery,
    ModelArtifactRegistry,
    load_model_artifact,
    save_model_artifact,
)


# ---------------------------------------------------------------------------- helpers
def random_graph(seed: int, num_entities: int = 30, num_relations: int = 6, n: int = 400) -> KnowledgeGraph:
    rng = np.random.default_rng(seed)
    triples = np.stack(
        [
            rng.integers(0, num_entities, size=n),
            rng.integers(0, num_relations, size=n),
            rng.integers(0, num_entities, size=n),
        ],
        axis=1,
    ).astype(np.int64)
    triples = np.unique(triples, axis=0)
    rng.shuffle(triples)
    n = len(triples)
    return KnowledgeGraph(
        name=f"random-{seed}",
        num_entities=num_entities,
        num_relations=num_relations,
        train=TripleSet(triples[: n // 2].copy()),
        valid=TripleSet(triples[n // 2 : 3 * n // 4].copy()),
        test=TripleSet(triples[3 * n // 4 :].copy()),
    )


def random_model(graph: KnowledgeGraph, num_groups: int, seed: int, dim: int = 16) -> KGEModel:
    rng = np.random.default_rng(seed + 1000)
    structures = [BlockStructure.random(4, rng) for _ in range(num_groups)]
    assignment = rng.integers(0, num_groups, size=graph.num_relations)
    return KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=dim,
        scorers=structures,
        assignment=assignment,
        seed=seed,
    )


def assert_graphs_equal(left: KnowledgeGraph, right: KnowledgeGraph) -> None:
    assert left.num_entities == right.num_entities
    assert left.num_relations == right.num_relations
    for split in ("train", "valid", "test"):
        np.testing.assert_array_equal(getattr(left, split).array, getattr(right, split).array)
    assert list(left.entity_vocab.symbols()) == list(right.entity_vocab.symbols())
    assert list(right.relation_vocab.symbols()) == list(right.relation_vocab.symbols())


@pytest.fixture
def dataset_dir(tmp_path):
    """A tiny random graph saved in the standard three-file TSV layout."""
    return save_tsv_dataset(random_graph(3, num_entities=20, n=200), tmp_path / "toy")


# ---------------------------------------------------------------------------- binary cache
class TestBinaryCache:
    def test_cached_load_round_trips_tsv_parse_exactly(self, dataset_dir):
        parsed = load_tsv_dataset(dataset_dir)
        first = load_dataset_directory(dataset_dir)  # cache miss: parses, then writes
        assert cache_path(dataset_dir).is_dir()
        second = load_dataset_directory(dataset_dir)  # cache hit: binary load
        for loaded in (first, second):
            assert loaded.name == parsed.name
            assert_graphs_equal(loaded, parsed)

    def test_cache_hit_does_not_reparse(self, dataset_dir, monkeypatch):
        load_dataset_directory(dataset_dir)  # build the cache

        def boom(*args, **kwargs):  # pragma: no cover - only on regression
            raise AssertionError("cache hit must not fall back to the TSV parser")

        import repro.kg.cache as cache_module

        monkeypatch.setattr(cache_module, "load_tsv_dataset", boom)
        graph = load_dataset_directory(dataset_dir)
        assert graph.num_entities > 0

    def test_digest_invalidation_on_file_edit(self, dataset_dir):
        before = load_dataset_directory(dataset_dir)
        stale_digest = dataset_digest(dataset_dir)
        with (dataset_dir / "train.txt").open("a", encoding="utf-8") as fh:
            fh.write("brand_new_head\tbrand_new_rel\tbrand_new_tail\n")
        assert dataset_digest(dataset_dir) != stale_digest
        # The stale cache must be a miss, and the reload must reflect the edit.
        assert load_cached_dataset(dataset_dir) is None
        after = load_dataset_directory(dataset_dir)
        assert len(after.train) == len(before.train) + 1
        assert "brand_new_head" in set(after.entity_vocab.symbols())

    def test_corrupt_cache_is_a_miss_not_an_error(self, dataset_dir):
        expected = load_dataset_directory(dataset_dir)
        (cache_path(dataset_dir) / "train.npy").write_bytes(b"not an npy file")
        reloaded = load_dataset_directory(dataset_dir)
        assert_graphs_equal(reloaded, expected)

    def test_use_cache_false_touches_nothing(self, dataset_dir):
        load_dataset_directory(dataset_dir, use_cache=False)
        assert not cache_path(dataset_dir).exists()

    def test_mmap_and_in_memory_cached_loads_are_identical(self, dataset_dir):
        graph = load_tsv_dataset(dataset_dir)
        write_dataset_cache(dataset_dir, graph)
        mapped = load_cached_dataset(dataset_dir, mmap=True)
        resident = load_cached_dataset(dataset_dir, mmap=False)
        assert mapped is not None and resident is not None
        assert_graphs_equal(mapped, resident)

    def test_cache_write_failure_degrades_to_parse(self, dataset_dir, monkeypatch):
        import repro.kg.cache as cache_module

        monkeypatch.setattr(
            cache_module, "write_dataset_cache", lambda *a, **k: None
        )
        graph = load_dataset_directory(dataset_dir)
        assert graph.num_entities > 0


# ---------------------------------------------------------------------------- resolution
class TestResolveDataset:
    def test_registry_name_resolves_with_scale(self):
        graph = resolve_dataset("fb15k_like", scale=0.5, seed=0)
        reference = load_benchmark("fb15k_like", scale=0.5, seed=0)
        assert graph.num_entities == reference.num_entities

    def test_directory_path_resolves(self, dataset_dir):
        graph = resolve_dataset(str(dataset_dir))
        reference = load_tsv_dataset(dataset_dir)
        assert_graphs_equal(graph, reference)

    def test_bare_name_that_is_a_directory_resolves(self, dataset_dir, monkeypatch):
        monkeypatch.chdir(dataset_dir.parent)
        assert is_directory_spec(dataset_dir.name)
        graph = resolve_dataset(dataset_dir.name)
        assert graph.num_entities == load_tsv_dataset(dataset_dir).num_entities

    def test_ambiguous_name_is_refused_loudly(self, tmp_path, monkeypatch):
        name = BENCHMARK_NAMES[0]
        shadow = save_tsv_dataset(random_graph(1, num_entities=8, n=40), tmp_path / name)
        monkeypatch.chdir(tmp_path)
        with pytest.raises(DatasetResolutionError, match="ambiguous"):
            resolve_dataset(name)
        # Disambiguation with an explicit path prefix selects the directory.
        graph = resolve_dataset(f"./{name}")
        assert graph.num_entities == load_tsv_dataset(shadow).num_entities

    def test_unknown_name_lists_the_registry(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(DatasetResolutionError, match=BENCHMARK_NAMES[0]):
            resolve_dataset("no_such_dataset")

    def test_scale_on_directory_is_rejected(self, dataset_dir):
        with pytest.raises(DatasetResolutionError, match="scale"):
            resolve_dataset(str(dataset_dir), scale=2.0)
        with pytest.raises(DatasetResolutionError, match="scale"):
            check_dataset_spec(str(dataset_dir), scale=0.5)

    def test_non_dataset_directory_is_rejected(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tr\tb\n")  # valid.txt/test.txt missing
        with pytest.raises(DatasetResolutionError, match="train.txt"):
            resolve_dataset(str(tmp_path))

    def test_directory_loads_are_memoised_until_edited(self, dataset_dir):
        first = resolve_dataset(str(dataset_dir))
        assert resolve_dataset(str(dataset_dir)) is first  # digest unchanged: same object
        with (dataset_dir / "test.txt").open("a", encoding="utf-8") as fh:
            fh.write("x\ty\tz\n")
        refreshed = resolve_dataset(str(dataset_dir))
        assert refreshed is not first
        assert len(refreshed.test) == len(first.test) + 1

    def test_dataset_label_registry_passthrough(self):
        for name in BENCHMARK_NAMES:
            assert dataset_label(name) == name

    def test_dataset_label_for_directories_is_safe_and_collision_free(self, tmp_path):
        a = tmp_path / "runs" / "fb15k-237"
        b = tmp_path / "other" / "fb15k-237"
        for directory in (a, b):
            save_tsv_dataset(random_graph(0, num_entities=6, n=30), directory)
        label_a, label_b = dataset_label(str(a)), dataset_label(str(b))
        assert label_a.startswith("fb15k-237-") and label_b.startswith("fb15k-237-")
        assert label_a != label_b  # same basename, different paths
        assert dataset_label(str(a)) == label_a  # deterministic


# ---------------------------------------------------------------------------- chunked scoring
class TestChunkedScoring:
    @pytest.mark.parametrize("seed,num_groups", [(0, 1), (1, 2), (2, 3)])
    @pytest.mark.parametrize("direction", ["tail", "head"])
    def test_chunk_concatenation_is_bit_identical(self, seed, num_groups, direction):
        # Entities span >2 tiles so chunking is real; multi-group models exercise the
        # scatter-by-relation-group path.
        graph = random_graph(seed, num_entities=2 * ENTITY_TILE + 200, n=600)
        model = random_model(graph, num_groups, seed)
        batch = graph.test.array[:40]
        full = model.score_all_arrays(batch, direction)
        for chunk in (ENTITY_TILE, 2 * ENTITY_TILE):
            pieces = [
                model.score_chunk_entities(batch, direction, start, min(start + chunk, model.num_entities))
                for start in range(0, model.num_entities, chunk)
            ]
            streamed = np.concatenate(pieces, axis=1)
            assert streamed.shape == full.shape
            assert np.array_equal(streamed, full)  # exact equality, not allclose

    def test_off_grid_chunk_start_is_rejected(self):
        graph = random_graph(0, num_entities=ENTITY_TILE + 100, n=200)
        model = random_model(graph, 1, 0)
        with pytest.raises(ValueError):
            model.score_chunk_entities(graph.test.array[:4], "tail", 100, model.num_entities)

    def test_normalize_chunk_size_rounds_up_to_tile_grid(self):
        assert normalize_chunk_size(1) == ENTITY_TILE
        assert normalize_chunk_size(ENTITY_TILE) == ENTITY_TILE
        assert normalize_chunk_size(ENTITY_TILE + 1) == 2 * ENTITY_TILE
        with pytest.raises(ValueError):
            normalize_chunk_size(0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("filtered", [True, False])
    def test_chunked_evaluator_ranks_exactly_equal(self, seed, filtered):
        graph = random_graph(seed, num_entities=2 * ENTITY_TILE + 300, n=700)
        model = random_model(graph, 2, seed)
        plain = RankingEvaluator(graph, filtered=filtered).ranks(model, graph.test)
        for chunk in (ENTITY_TILE, ENTITY_TILE + 1, 10 * ENTITY_TILE):
            chunked = RankingEvaluator(
                graph, filtered=filtered, entity_chunk_size=chunk
            ).ranks(model, graph.test)
            assert np.array_equal(plain, chunked)

    def test_chunked_evaluation_bounds_peak_memory(self):
        # With filtering off, the dominant allocation of a ranking pass is the
        # (batch, num_entities) float64 score matrix; the chunked pass replaces it
        # with (batch, chunk) slabs and must allocate measurably less at peak.
        graph = random_graph(7, num_entities=4 * ENTITY_TILE, n=900)
        model = random_model(graph, 1, 7)
        triples = graph.test

        def peak(evaluator):
            evaluator.ranks(model, triples)  # warm caches outside the measurement
            tracemalloc.start()
            evaluator.ranks(model, triples)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return high

        unchunked_peak = peak(RankingEvaluator(graph, filtered=False))
        chunked_peak = peak(
            RankingEvaluator(graph, filtered=False, entity_chunk_size=ENTITY_TILE)
        )
        assert chunked_peak < 0.75 * unchunked_peak


# ---------------------------------------------------------------------------- streamed serving
class TestStreamedEngine:
    def test_streamed_predictions_match_unchunked(self):
        graph = random_graph(5, num_entities=2 * ENTITY_TILE + 64, n=500)
        model = random_model(graph, 2, 5)
        queries = [
            LinkQuery(relation=int(r), head=int(h), k=12)
            for h, r, _ in graph.test.array[:10]
        ] + [
            LinkQuery(relation=int(r), tail=int(t), k=7)
            for _, r, t in graph.test.array[10:20]
        ]
        plain = LinkPredictionEngine(model, filtered=False).predict(queries)
        streamed = LinkPredictionEngine(
            model, filtered=False, entity_chunk_size=ENTITY_TILE
        ).predict(queries)
        for p, s in zip(plain, streamed):
            np.testing.assert_array_equal(p.entities, s.entities)
            assert np.array_equal(p.scores, s.scores)


# ---------------------------------------------------------------------------- mmap artifacts
class TestMmapArtifacts:
    def test_mmap_load_is_bit_identical_to_in_memory(self, tmp_path):
        graph = random_graph(9, num_entities=ENTITY_TILE + 40, n=300)
        model = random_model(graph, 2, 9)
        directory = save_model_artifact(model, tmp_path / "artifact")
        resident, _ = load_model_artifact(directory, mmap=False)
        mapped, _ = load_model_artifact(directory, mmap=True)
        batch = graph.test.array[:24]
        for direction in ("tail", "head"):
            expected = resident.score_all_arrays(batch, direction)
            assert np.array_equal(mapped.score_all_arrays(batch, direction), expected)
        # The mmap sidecar holds one extracted .npy per parameter next to the .npz.
        from repro.serve.artifacts import MMAP_DIRNAME

        assert (directory / MMAP_DIRNAME).is_dir()

    def test_registry_mmap_load_matches(self, tmp_path):
        graph = random_graph(11, num_entities=ENTITY_TILE, n=250)
        model = random_model(graph, 1, 11)
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("scale-test", model)
        resident, _ = registry.load("scale-test", mmap=False)
        mapped, _ = registry.load("scale-test", mmap=True)
        batch = graph.valid.array[:16]
        assert np.array_equal(
            mapped.score_all_arrays(batch, "tail"),
            resident.score_all_arrays(batch, "tail"),
        )

    def test_mmap_engine_end_to_end(self, tmp_path):
        graph = random_graph(13, num_entities=ENTITY_TILE + 128, n=400)
        model = random_model(graph, 1, 13)
        directory = save_model_artifact(model, tmp_path / "engine-artifact")
        queries = [LinkQuery(relation=int(r), head=int(h), k=5) for h, r, _ in graph.test.array[:8]]
        plain = LinkPredictionEngine.from_artifact(directory, mmap=False, filtered=False)
        mapped = LinkPredictionEngine.from_artifact(
            directory, mmap=True, filtered=False, entity_chunk_size=ENTITY_TILE
        )
        for p, s in zip(plain.predict(queries), mapped.predict(queries)):
            np.testing.assert_array_equal(p.entities, s.entities)
            assert np.array_equal(p.scores, s.scores)


# ---------------------------------------------------------------------------- end to end
class TestDirectoryDatasetEndToEnd:
    def test_search_runner_resolves_directory_dataset(self, dataset_dir):
        from repro.runtime.runner import RunConfig, SearchRunner

        config = RunConfig(dataset=str(dataset_dir), search_epochs=1, num_groups=1, budget_steps=1)
        runner = SearchRunner(config)
        graph = runner.graph
        assert graph.num_entities == load_tsv_dataset(dataset_dir).num_entities
        assert graph.name == dataset_dir.name

    def test_sweep_validation_rejects_bad_dataset_specs(self, dataset_dir):
        from repro.runtime.orchestrator import SweepConfig, SweepError

        with pytest.raises(SweepError, match="unknown dataset"):
            SweepConfig(datasets=["definitely_not_a_dataset"])
        with pytest.raises(SweepError, match="scale"):
            SweepConfig(datasets=[str(dataset_dir)], scale=2.0)
        SweepConfig(datasets=[str(dataset_dir)])  # a directory spec validates cleanly
