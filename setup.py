"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on environments without
the ``wheel`` package (legacy ``pip install -e . --no-use-pep517`` path).
"""

from setuptools import setup

setup()
